"""A reduced ordered binary decision diagram (ROBDD) engine.

This module is a from-scratch substitute for the JavaBDD library used by
Campion.  It implements hash-consed ROBDD nodes with an if-then-else (ite)
core, operation-specialized binary apply kernels, the standard boolean
connectives, restriction, existential and universal quantification,
satisfiability counting, and variable support computation.

Design notes
------------
* Nodes live in a pluggable *node store* (:mod:`repro.bdd.store`): flat
  parallel columns (``var``/``low``/``high``) indexed by integer node ids,
  with ids 0 and 1 reserved for the terminal FALSE and TRUE nodes.  The
  default :class:`~repro.bdd.store.FlatNodeStore` keeps the columns in
  ``array('q')`` C arrays and the unique table open-addressed in one more
  flat array — no boxed ints, no key tuples — which matters because
  SemanticDiff on 10,000-rule ACLs creates millions of nodes.  The manager
  aliases the columns as ``_var``/``_low``/``_high``, so every traversal
  below reads them by plain indexing whatever the store.
* The store's unique table maps ``(var, low, high)`` triples to node ids
  so that structurally equal subgraphs share one node; BDD equality is then
  id equality, which is what makes the pairwise intersection tests in
  SemanticDiff cheap.  All node creation — the kernels' fold sites
  included — funnels through ``store.mk``, which is also where resource
  budgets are enforced.
* Every traversal — the ite core, the binary apply kernels, quantification,
  restriction, counting, and cube enumeration — runs on an explicit stack
  rather than Python recursion, so BDDs over thousands of variables (deep
  chain conjunctions, 10,000-rule ACL encodings) cannot hit
  ``RecursionError`` regardless of ``sys.getrecursionlimit()``.
* The hot connectives (AND/OR/XOR/DIFF/NOT) have *specialized* kernels with
  their own operand caches and terminal short-circuits.  Commutative
  operations normalize their cache key (``a&b`` and ``b&a`` share one
  entry), DIFF runs in a single pass instead of materializing the negation,
  and NOT keeps a bidirectional complement cache (negation is an
  involution).  Pass ``fast_kernels=False`` to route every connective
  through the generic ite core instead — the compatibility mode the kernel
  benchmarks use as their baseline.
* Caches are never invalidated because nodes are immortal for the life of
  the manager; Campion's workloads are one-shot comparisons so this is the
  right trade-off.  Cache effectiveness is observable through
  :meth:`BddManager.stats`, which reports per-operation hit/miss counters
  and node/cache population snapshots.
* Variable order is the order of :meth:`BddManager.new_var` calls.  Callers
  that care about ordering (see ``benchmarks/bench_ablation_var_order.py``)
  allocate variables accordingly.

The public surface is :class:`BddManager` and the lightweight :class:`Bdd`
wrapper, which supports ``&``, ``|``, ``^``, ``~`` and ``-`` (set
difference) operators so that the algorithm code reads like the paper's
set algebra.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .. import perf
from .store import resolve_store

__all__ = ["AnalysisBudgetExceeded", "Bdd", "BddManager"]


class AnalysisBudgetExceeded(RuntimeError):
    """A BDD analysis outgrew its resource budget and was aborted.

    Raised from the node-allocation path when the manager holds more
    nodes than its ``node_limit`` or its wall-clock ``deadline`` has
    passed.  Carries structured fields so callers can report *which*
    budget tripped and convert the abort into a per-component degraded
    result instead of letting the process OOM or hang:

    * ``resource`` — ``"nodes"`` or ``"deadline"``,
    * ``limit`` — the configured bound (node count, or seconds granted),
    * ``used`` — the observed value at abort time.
    """

    def __init__(self, resource: str, limit: float, used: float):
        self.resource = resource
        self.limit = limit
        self.used = used
        if resource == "nodes":
            detail = f"{int(used)} nodes allocated, limit {int(limit)}"
        else:
            detail = f"{used:.1f}s elapsed, budget {limit:.1f}s"
        super().__init__(f"analysis budget exceeded ({resource}): {detail}")

# Terminal node ids.  They are the same in every manager.
_FALSE = 0
_TRUE = 1

# Sentinel variable index for terminals: larger than any real variable so
# that terminals sort below all decision nodes in the variable order.
_TERMINAL_LEVEL = 1 << 30

# Names of the operation caches surfaced by BddManager.stats().
_OP_NAMES = ("ite", "and", "or", "xor", "diff", "not", "intersect")

# Deadline checks poll the clock once per this many fresh node
# allocations: cheap enough to leave on, frequent enough that a BDD
# blow-up is caught within milliseconds of the deadline passing.
_DEADLINE_CHECK_EVERY = 4096


class Bdd:
    """An immutable boolean function handle bound to a :class:`BddManager`.

    Instances are value objects: two ``Bdd`` handles from the same manager
    denote the same function if and only if their node ids are equal, so
    ``==`` and hashing are O(1).
    """

    __slots__ = ("manager", "node")

    def __init__(self, manager: "BddManager", node: int):
        self.manager = manager
        self.node = node

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bdd):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.node == _FALSE:
            return "Bdd(FALSE)"
        if self.node == _TRUE:
            return "Bdd(TRUE)"
        return f"Bdd(node={self.node}, var={self.manager._var[self.node]})"

    # -- predicates -------------------------------------------------------
    def is_false(self) -> bool:
        """True when this function is unsatisfiable."""
        return self.node == _FALSE

    def is_true(self) -> bool:
        """True when this function is a tautology."""
        return self.node == _TRUE

    def __bool__(self) -> bool:
        """Truthiness is satisfiability, matching set-intuition (`if s:`)."""
        return self.node != _FALSE

    # -- connectives ------------------------------------------------------
    def __and__(self, other: "Bdd") -> "Bdd":
        return self.manager.apply_and(self, other)

    def __or__(self, other: "Bdd") -> "Bdd":
        return self.manager.apply_or(self, other)

    def __xor__(self, other: "Bdd") -> "Bdd":
        return self.manager.apply_xor(self, other)

    def __invert__(self) -> "Bdd":
        return self.manager.apply_not(self)

    def __sub__(self, other: "Bdd") -> "Bdd":
        """Set difference: ``self & ~other``."""
        return self.manager.apply_diff(self, other)

    # -- relational helpers -------------------------------------------------
    def implies(self, other: "Bdd") -> bool:
        """Decide ``self => other`` (set containment)."""
        return self.manager.apply_diff(self, other).is_false()

    def intersects(self, other: "Bdd") -> bool:
        """Decide whether the two sets share any element."""
        return self.manager.intersects(self, other)

    # -- queries ------------------------------------------------------------
    def satcount(self, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        Defaults to all variables currently allocated in the manager.
        """
        return self.manager.satcount(self, nvars)

    def support(self) -> List[int]:
        """Sorted list of variable indices this function depends on."""
        return self.manager.support(self)

    def any_model(self) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (partial: unmentioned vars are free)."""
        return self.manager.any_model(self)


class BddManager:
    """Owner of all BDD nodes, the unique table, and operation caches.

    ``fast_kernels`` selects between the specialized apply kernels
    (default) and the generic ite core for every connective; the latter
    exists so benchmarks can measure the kernels against a one-cache
    baseline inside a single process.
    """

    def __init__(
        self,
        fast_kernels: bool = True,
        node_limit: Optional[int] = None,
        time_budget: Optional[float] = None,
        store=None,
    ) -> None:
        # The node store owns the parallel node columns (slots 0/1 are
        # the FALSE/TRUE terminals) and the unique table; the manager
        # aliases the columns for the kernels' direct indexing.
        self._store = resolve_store(store)
        self._var = self._store.var
        self._low = self._store.low
        self._high = self._store.high
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._diff_cache: Dict[Tuple[int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        # Unordered operand pairs proven to have empty intersection by the
        # short-circuit intersection kernel (no result node to store).
        self._disjoint_cache: set = set()
        self._satcount_cache: Dict[Tuple[int, int], int] = {}
        self._hits: Dict[str, int] = {name: 0 for name in _OP_NAMES}
        self._misses: Dict[str, int] = {name: 0 for name in _OP_NAMES}
        self._num_vars = 0
        self.fast_kernels = bool(fast_kernels)
        # Resource budget (see set_budget); checked on node allocation,
        # the single point every kernel grows through.
        self._node_limit: Optional[int] = None
        self._deadline: Optional[float] = None
        self._time_budget: Optional[float] = None
        self._deadline_countdown = _DEADLINE_CHECK_EVERY
        self._budget_active = False
        self.set_budget(node_limit=node_limit, time_budget=time_budget)
        self.false = Bdd(self, _FALSE)
        self.true = Bdd(self, _TRUE)

    # -- variable management ------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of decision variables allocated so far."""
        return self._num_vars

    def new_var(self) -> Bdd:
        """Allocate the next variable in the global order and return it."""
        var = self._num_vars
        self._num_vars += 1
        return Bdd(self, self._mk(var, _FALSE, _TRUE))

    def new_vars(self, count: int) -> List[Bdd]:
        """Allocate ``count`` consecutive variables."""
        if count < 0:
            raise ValueError(f"variable count must be non-negative, got {count}")
        return [self.new_var() for _ in range(count)]

    def var(self, index: int) -> Bdd:
        """The positive literal of an already-allocated variable."""
        if not 0 <= index < self._num_vars:
            raise IndexError(f"variable {index} not allocated (have {self._num_vars})")
        return Bdd(self, self._mk(index, _FALSE, _TRUE))

    def nvar(self, index: int) -> Bdd:
        """The negative literal of an already-allocated variable."""
        if not 0 <= index < self._num_vars:
            raise IndexError(f"variable {index} not allocated (have {self._num_vars})")
        return Bdd(self, self._mk(index, _TRUE, _FALSE))

    def constant(self, value: bool) -> Bdd:
        """The constant TRUE or FALSE function."""
        return self.true if value else self.false

    @property
    def node_count(self) -> int:
        """Total number of allocated nodes, including the two terminals."""
        return len(self._var)

    # -- statistics ----------------------------------------------------------
    def stats(self) -> Dict:
        """Cache-effectiveness and population counters, JSON-compatible.

        ``caches`` maps each operation to its hit/miss counters (misses
        are memoized subproblem expansions, so ``misses`` also bounds the
        work each kernel actually performed) and current entry count.
        """
        cache_tables = {
            "ite": self._ite_cache,
            "and": self._and_cache,
            "or": self._or_cache,
            "xor": self._xor_cache,
            "diff": self._diff_cache,
            "not": self._not_cache,
            "intersect": self._disjoint_cache,
        }
        return {
            "fast_kernels": self.fast_kernels,
            "node_store": self._store.kind,
            "budget": {
                "node_limit": self._node_limit,
                "time_budget": self._time_budget,
            },
            "num_vars": self._num_vars,
            "node_count": self.node_count,
            "unique_entries": self._store.unique_entries,
            "satcount_entries": len(self._satcount_cache),
            "caches": {
                name: {
                    "hits": self._hits[name],
                    "misses": self._misses[name],
                    "entries": len(cache_tables[name]),
                }
                for name in _OP_NAMES
            },
        }

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (cache contents are untouched)."""
        for name in _OP_NAMES:
            self._hits[name] = 0
            self._misses[name] = 0

    # -- resource budgets ----------------------------------------------------
    def set_budget(
        self,
        node_limit: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> None:
        """Arm (or disarm, with both ``None``) this manager's budget.

        ``node_limit`` bounds total allocated nodes; ``time_budget`` is
        wall-clock seconds from *now*.  When either trips, node
        allocation raises :class:`AnalysisBudgetExceeded` — the manager
        stays internally consistent (nodes are immortal, caches only
        hold finished subresults), so a caller may catch the exception,
        report the component as aborted, and keep using other managers.
        """
        if node_limit is not None and node_limit < 2:
            raise ValueError(f"node_limit must cover the terminals, got {node_limit}")
        if time_budget is not None and time_budget <= 0:
            raise ValueError(f"time_budget must be positive, got {time_budget}")
        self._node_limit = node_limit
        self._time_budget = time_budget
        self._deadline = (
            time.monotonic() + time_budget if time_budget is not None else None
        )
        self._deadline_countdown = _DEADLINE_CHECK_EVERY
        self._budget_active = node_limit is not None or time_budget is not None
        # Arm the store hook: every fresh allocation — including the
        # kernels' inline fold sites — checks the budget exactly when
        # one is set, and pays nothing when none is.
        self._store.budget_check = self._check_budget if self._budget_active else None

    def _check_budget(self) -> None:
        """Raise if a fresh allocation would exceed the armed budget."""
        if self._node_limit is not None and len(self._var) >= self._node_limit:
            raise AnalysisBudgetExceeded("nodes", self._node_limit, len(self._var))
        if self._deadline is not None:
            self._deadline_countdown -= 1
            if self._deadline_countdown <= 0:
                self._deadline_countdown = _DEADLINE_CHECK_EVERY
                now = time.monotonic()
                if now > self._deadline:
                    elapsed = self._time_budget + (now - self._deadline)
                    raise AnalysisBudgetExceeded(
                        "deadline", self._time_budget, elapsed
                    )

    # -- node construction ----------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` with reduction."""
        return self._store.mk(var, low, high)

    def cube(self, literals) -> Bdd:
        """Conjunction of single-variable literals, built directly.

        ``literals`` is a mapping (or iterable of pairs) from variable
        index to phase — ``True`` for the positive literal.  The chain is
        constructed bottom-up straight against the unique table, one
        ``_mk`` per literal, with no apply traffic or cache pollution;
        the encoders lean on this for address/port bit patterns, which
        dominate node construction on large ACLs.  Conflicting phases for
        one variable yield FALSE.  In compatibility mode
        (``fast_kernels=False``) the same cube is built through the
        generic ite core, matching the historical per-bit conjunctions.
        """
        pairs = literals.items() if hasattr(literals, "items") else literals
        items: Dict[int, bool] = {}
        for var, value in pairs:
            if not 0 <= var < self._num_vars:
                raise IndexError(
                    f"variable {var} not allocated (have {self._num_vars})"
                )
            value = bool(value)
            previous = items.get(var)
            if previous is None:
                items[var] = value
            elif previous != value:
                return self.false  # x & ~x
        node = _TRUE
        if self.fast_kernels:
            for var in sorted(items, reverse=True):
                if items[var]:
                    node = self._mk(var, _FALSE, node)
                else:
                    node = self._mk(var, node, _FALSE)
            return Bdd(self, node)
        for var in sorted(items, reverse=True):
            literal = (
                self._mk(var, _FALSE, _TRUE)
                if items[var]
                else self._mk(var, _TRUE, _FALSE)
            )
            node = self._ite(literal, node, _FALSE)
        return Bdd(self, node)

    def threshold(self, var_indices: Sequence[int], bound: int, at_least: bool) -> Bdd:
        """Comparison of an MSB-first variable chain against a constant.

        Builds the predicate ``value >= bound`` (``at_least=True``) or
        ``value <= bound`` over the unsigned integer laid out across
        ``var_indices`` (most significant bit first, indices strictly
        increasing so the chain respects the global order).  Constructed
        bottom-up with one ``_mk`` per bit — a threshold function is a
        single chain in the diagram, so no apply traffic is needed.
        """
        width = len(var_indices)
        if not 0 <= bound < (1 << width):
            raise ValueError(f"bound {bound} out of range for {width}-bit chain")
        for position in range(width):
            var = var_indices[position]
            if not 0 <= var < self._num_vars:
                raise IndexError(
                    f"variable {var} not allocated (have {self._num_vars})"
                )
            if position and var <= var_indices[position - 1]:
                raise ValueError("var_indices must be strictly increasing")
        # Suffix invariant, LSB upward: node == "remaining bits satisfy the
        # comparison given the prefix so far is exactly equal to bound's".
        node = _TRUE
        for position in range(width - 1, -1, -1):
            bit_set = (bound >> (width - 1 - position)) & 1
            var = var_indices[position]
            if at_least:
                if bit_set:
                    node = self._mk(var, _FALSE, node)
                else:
                    node = self._mk(var, node, _TRUE)
            else:
                if bit_set:
                    node = self._mk(var, _TRUE, node)
                else:
                    node = self._mk(var, node, _FALSE)
        return Bdd(self, node)

    # -- ite core ---------------------------------------------------------------
    def _ite(self, f: int, g: int, h: int) -> int:
        """If-then-else on raw node ids, on an explicit stack.

        Work items are 4-tuples: ``(0, f, g, h)`` expands a subproblem,
        ``(1, key, top, 0)`` folds the two child results (sitting on the
        value stack) into a node and memoizes it under ``key``.
        """
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        mk = self._store.mk
        cache = self._ite_cache
        hits = misses = 0
        values: List[int] = []
        tasks: List[Tuple] = [(0, f, g, h)]
        while tasks:
            task = tasks.pop()
            if task[0] == 0:
                _, f, g, h = task
                # Terminal short-circuits.
                if f == _TRUE:
                    values.append(g)
                    continue
                if f == _FALSE:
                    values.append(h)
                    continue
                if g == h:
                    values.append(g)
                    continue
                if g == _TRUE and h == _FALSE:
                    values.append(f)
                    continue
                key = (f, g, h)
                cached = cache.get(key)
                if cached is not None:
                    hits += 1
                    values.append(cached)
                    continue
                misses += 1
                fv, gv, hv = var_arr[f], var_arr[g], var_arr[h]
                top = fv if fv < gv else gv
                if hv < top:
                    top = hv
                if fv == top:
                    f0, f1 = low_arr[f], high_arr[f]
                else:
                    f0 = f1 = f
                if gv == top:
                    g0, g1 = low_arr[g], high_arr[g]
                else:
                    g0 = g1 = g
                if hv == top:
                    h0, h1 = low_arr[h], high_arr[h]
                else:
                    h0 = h1 = h
                tasks.append((1, key, top, 0))
                tasks.append((0, f1, g1, h1))
                tasks.append((0, f0, g0, h0))
            else:
                _, key, top, _ = task
                high = values.pop()
                low = values.pop()
                result = mk(top, low, high)
                cache[key] = result
                values.append(result)
        self._hits["ite"] += hits
        self._misses["ite"] += misses
        return values[-1]

    # -- specialized binary kernels ---------------------------------------------
    # Each kernel is the apply algorithm for one connective with inlined
    # terminal cases, its own memo table, and (for commutative operations)
    # operand-sorted cache keys.  Terminal and cache-hit resolutions return
    # before any stack setup; only genuine cache misses enter the loop.
    # Work items mirror the ite core: ``(0, f, g)`` expands a subproblem,
    # ``(1, key, top)`` folds the two child results from the value stack
    # into a node and memoizes it under the already-built ``key`` (reusing
    # the key tuple keeps the combine phase allocation-free on hits in the
    # unique table).

    def _and(self, f: int, g: int) -> int:
        if f == g or g == _TRUE:
            return f
        if f == _FALSE or g == _FALSE:
            return _FALSE
        if f == _TRUE:
            return g
        if g < f:  # commutative: one cache entry per unordered pair
            f, g = g, f
        cache = self._and_cache
        result = cache.get((f, g))
        if result is not None:
            self._hits["and"] += 1
            return result
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        mk = self._store.mk
        hits = misses = 0
        values: List[int] = []
        # Work items: (0, f, g) expand; (1, key, top) fold two child
        # results from the value stack; (2, key, top, high) fold when the
        # high child resolved inline before the low child was scheduled.
        tasks: List[Tuple] = [(0, f, g)]
        while tasks:
            task = tasks.pop()
            tag = task[0]
            if tag == 0:
                _, f, g = task
                if f == g or g == _TRUE:
                    values.append(f)
                    continue
                if f == _FALSE or g == _FALSE:
                    values.append(_FALSE)
                    continue
                if f == _TRUE:
                    values.append(g)
                    continue
                if g < f:
                    f, g = g, f
                key = (f, g)
                cached = cache.get(key)
                if cached is not None:
                    hits += 1
                    values.append(cached)
                    continue
                misses += 1
                fv, gv = var_arr[f], var_arr[g]
                if fv <= gv:
                    top, f0, f1 = fv, low_arr[f], high_arr[f]
                else:
                    top, f0, f1 = gv, f, f
                if gv <= fv:
                    g0, g1 = low_arr[g], high_arr[g]
                else:
                    g0 = g1 = g
                # Resolve children inline when a terminal rule or a cache
                # hit answers them — skips a push/pop round-trip each.
                if f0 == g0 or g0 == _TRUE:
                    r0 = f0
                elif f0 == _FALSE or g0 == _FALSE:
                    r0 = _FALSE
                elif f0 == _TRUE:
                    r0 = g0
                else:
                    if g0 < f0:
                        f0, g0 = g0, f0
                    r0 = cache.get((f0, g0), -1)
                    if r0 >= 0:
                        hits += 1
                if f1 == g1 or g1 == _TRUE:
                    r1 = f1
                elif f1 == _FALSE or g1 == _FALSE:
                    r1 = _FALSE
                elif f1 == _TRUE:
                    r1 = g1
                else:
                    if g1 < f1:
                        f1, g1 = g1, f1
                    r1 = cache.get((f1, g1), -1)
                    if r1 >= 0:
                        hits += 1
                if r0 >= 0:
                    if r1 >= 0:
                        result = mk(top, r0, r1)
                        cache[key] = result
                        values.append(result)
                    else:
                        values.append(r0)
                        tasks.append((1, key, top))
                        tasks.append((0, f1, g1))
                elif r1 >= 0:
                    tasks.append((2, key, top, r1))
                    tasks.append((0, f0, g0))
                else:
                    tasks.append((1, key, top))
                    tasks.append((0, f1, g1))
                    tasks.append((0, f0, g0))
            else:
                if tag == 1:
                    _, key, top = task
                    high = values.pop()
                else:
                    _, key, top, high = task
                low = values.pop()
                result = mk(top, low, high)
                cache[key] = result
                values.append(result)
        self._hits["and"] += hits
        self._misses["and"] += misses
        return values[-1]

    def _or(self, f: int, g: int) -> int:
        if f == g or g == _FALSE:
            return f
        if f == _TRUE or g == _TRUE:
            return _TRUE
        if f == _FALSE:
            return g
        if g < f:  # commutative
            f, g = g, f
        cache = self._or_cache
        result = cache.get((f, g))
        if result is not None:
            self._hits["or"] += 1
            return result
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        mk = self._store.mk
        hits = misses = 0
        values: List[int] = []
        tasks: List[Tuple] = [(0, f, g)]
        while tasks:
            task = tasks.pop()
            if task[0] == 0:
                _, f, g = task
                if f == g or g == _FALSE:
                    values.append(f)
                    continue
                if f == _TRUE or g == _TRUE:
                    values.append(_TRUE)
                    continue
                if f == _FALSE:
                    values.append(g)
                    continue
                if g < f:
                    f, g = g, f
                key = (f, g)
                cached = cache.get(key)
                if cached is not None:
                    hits += 1
                    values.append(cached)
                    continue
                misses += 1
                fv, gv = var_arr[f], var_arr[g]
                if fv <= gv:
                    top, f0, f1 = fv, low_arr[f], high_arr[f]
                else:
                    top, f0, f1 = gv, f, f
                if gv <= fv:
                    g0, g1 = low_arr[g], high_arr[g]
                else:
                    g0 = g1 = g
                # Resolve children inline when a terminal rule or a cache
                # hit answers them — skips a push/pop round-trip each.
                if f0 == g0 or g0 == _FALSE:
                    r0 = f0
                elif f0 == _TRUE or g0 == _TRUE:
                    r0 = _TRUE
                elif f0 == _FALSE:
                    r0 = g0
                else:
                    if g0 < f0:
                        f0, g0 = g0, f0
                    r0 = cache.get((f0, g0), -1)
                    if r0 >= 0:
                        hits += 1
                if f1 == g1 or g1 == _FALSE:
                    r1 = f1
                elif f1 == _TRUE or g1 == _TRUE:
                    r1 = _TRUE
                elif f1 == _FALSE:
                    r1 = g1
                else:
                    if g1 < f1:
                        f1, g1 = g1, f1
                    r1 = cache.get((f1, g1), -1)
                    if r1 >= 0:
                        hits += 1
                if r0 >= 0:
                    if r1 >= 0:
                        result = mk(top, r0, r1)
                        cache[key] = result
                        values.append(result)
                    else:
                        values.append(r0)
                        tasks.append((1, key, top))
                        tasks.append((0, f1, g1))
                elif r1 >= 0:
                    tasks.append((2, key, top, r1))
                    tasks.append((0, f0, g0))
                else:
                    tasks.append((1, key, top))
                    tasks.append((0, f1, g1))
                    tasks.append((0, f0, g0))
            else:
                if task[0] == 1:
                    _, key, top = task
                    high = values.pop()
                else:
                    _, key, top, high = task
                low = values.pop()
                result = mk(top, low, high)
                cache[key] = result
                values.append(result)
        self._hits["or"] += hits
        self._misses["or"] += misses
        return values[-1]

    def _xor(self, f: int, g: int) -> int:
        if f == g:
            return _FALSE
        if f == _FALSE:
            return g
        if g == _FALSE:
            return f
        if f == _TRUE:
            return self._not(g)
        if g == _TRUE:
            return self._not(f)
        if g < f:  # commutative
            f, g = g, f
        cache = self._xor_cache
        result = cache.get((f, g))
        if result is not None:
            self._hits["xor"] += 1
            return result
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        mk = self._store.mk
        hits = misses = 0
        values: List[int] = []
        tasks: List[Tuple] = [(0, f, g)]
        while tasks:
            task = tasks.pop()
            if task[0] == 0:
                _, f, g = task
                if f == g:
                    values.append(_FALSE)
                    continue
                if f == _FALSE:
                    values.append(g)
                    continue
                if g == _FALSE:
                    values.append(f)
                    continue
                if f == _TRUE:
                    values.append(self._not(g))
                    continue
                if g == _TRUE:
                    values.append(self._not(f))
                    continue
                if g < f:
                    f, g = g, f
                key = (f, g)
                cached = cache.get(key)
                if cached is not None:
                    hits += 1
                    values.append(cached)
                    continue
                misses += 1
                fv, gv = var_arr[f], var_arr[g]
                if fv <= gv:
                    top, f0, f1 = fv, low_arr[f], high_arr[f]
                else:
                    top, f0, f1 = gv, f, f
                if gv <= fv:
                    g0, g1 = low_arr[g], high_arr[g]
                else:
                    g0 = g1 = g
                tasks.append((1, key, top))
                tasks.append((0, f1, g1))
                tasks.append((0, f0, g0))
            else:
                _, key, top = task
                high = values.pop()
                low = values.pop()
                result = mk(top, low, high)
                cache[key] = result
                values.append(result)
        self._hits["xor"] += hits
        self._misses["xor"] += misses
        return values[-1]

    def _diff(self, f: int, g: int) -> int:
        """``f & ~g`` in one pass (no intermediate negation graph)."""
        if f == _FALSE or g == _TRUE or f == g:
            return _FALSE
        if g == _FALSE:
            return f
        if f == _TRUE:
            return self._not(g)
        cache = self._diff_cache
        result = cache.get((f, g))
        if result is not None:
            self._hits["diff"] += 1
            return result
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        mk = self._store.mk
        hits = misses = 0
        values: List[int] = []
        tasks: List[Tuple] = [(0, f, g)]
        while tasks:
            task = tasks.pop()
            if task[0] == 0:
                _, f, g = task
                if f == _FALSE or g == _TRUE or f == g:
                    values.append(_FALSE)
                    continue
                if g == _FALSE:
                    values.append(f)
                    continue
                if f == _TRUE:
                    values.append(self._not(g))
                    continue
                key = (f, g)
                cached = cache.get(key)
                if cached is not None:
                    hits += 1
                    values.append(cached)
                    continue
                misses += 1
                fv, gv = var_arr[f], var_arr[g]
                if fv <= gv:
                    top, f0, f1 = fv, low_arr[f], high_arr[f]
                else:
                    top, f0, f1 = gv, f, f
                if gv <= fv:
                    g0, g1 = low_arr[g], high_arr[g]
                else:
                    g0 = g1 = g
                # Resolve children inline when a terminal rule or a cache
                # hit answers them — skips a push/pop round-trip each.
                if f0 == _FALSE or g0 == _TRUE or f0 == g0:
                    r0 = _FALSE
                elif g0 == _FALSE:
                    r0 = f0
                elif f0 == _TRUE:
                    r0 = self._not(g0)
                else:
                    r0 = cache.get((f0, g0), -1)
                    if r0 >= 0:
                        hits += 1
                if f1 == _FALSE or g1 == _TRUE or f1 == g1:
                    r1 = _FALSE
                elif g1 == _FALSE:
                    r1 = f1
                elif f1 == _TRUE:
                    r1 = self._not(g1)
                else:
                    r1 = cache.get((f1, g1), -1)
                    if r1 >= 0:
                        hits += 1
                if r0 >= 0:
                    if r1 >= 0:
                        result = mk(top, r0, r1)
                        cache[key] = result
                        values.append(result)
                    else:
                        values.append(r0)
                        tasks.append((1, key, top))
                        tasks.append((0, f1, g1))
                elif r1 >= 0:
                    tasks.append((2, key, top, r1))
                    tasks.append((0, f0, g0))
                else:
                    tasks.append((1, key, top))
                    tasks.append((0, f1, g1))
                    tasks.append((0, f0, g0))
            else:
                if task[0] == 1:
                    _, key, top = task
                    high = values.pop()
                else:
                    _, key, top, high = task
                low = values.pop()
                result = mk(top, low, high)
                cache[key] = result
                values.append(result)
        self._hits["diff"] += hits
        self._misses["diff"] += misses
        return values[-1]

    def _not(self, f: int) -> int:
        """Negation with a bidirectional complement cache.

        Negation is an involution on ROBDDs with both terminals, so every
        computed pair is cached in both directions: ``~~x`` is a lookup.
        """
        if f <= _TRUE:
            return f ^ 1
        cache = self._not_cache
        result = cache.get(f)
        if result is not None:
            self._hits["not"] += 1
            return result
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        mk = self._store.mk
        hits = misses = 0
        values: List[int] = []
        tasks: List[Tuple] = [(0, f)]
        while tasks:
            task = tasks.pop()
            if task[0] == 0:
                f = task[1]
                if f <= _TRUE:
                    values.append(f ^ 1)
                    continue
                cached = cache.get(f)
                if cached is not None:
                    hits += 1
                    values.append(cached)
                    continue
                misses += 1
                tasks.append((1, f, var_arr[f]))
                tasks.append((0, high_arr[f]))
                tasks.append((0, low_arr[f]))
            else:
                _, f, top = task
                high = values.pop()
                low = values.pop()
                result = mk(top, low, high)
                cache[f] = result
                cache[result] = f
                values.append(result)
        self._hits["not"] += hits
        self._misses["not"] += misses
        return values[-1]

    def _intersects(self, f: int, g: int) -> bool:
        """Decide ``f & g != FALSE`` without building the product BDD.

        Depth-first search over operand pairs: any branch reaching a pair
        with a shared satisfying path returns True immediately, so
        non-empty intersections usually resolve after one root-to-terminal
        walk.  When the search exhausts (the sets are disjoint) every pair
        it visited is recorded in ``_disjoint_cache`` — across a
        SemanticDiff run the big operand (the disagreement region) is
        fixed, so later classes resolve mostly from cache.  Results in
        ``_and_cache`` are consulted too: a cached conjunction answers the
        emptiness question for free.
        """
        if f == _FALSE or g == _FALSE:
            return False
        if f == g or f == _TRUE or g == _TRUE:
            return True
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        disjoint = self._disjoint_cache
        and_cache = self._and_cache
        hits = 0
        visited: set = set()
        stack: List[Tuple[int, int]] = [(f, g)]
        while stack:
            f, g = stack.pop()
            if f == _FALSE or g == _FALSE:
                continue
            if f == g or f == _TRUE or g == _TRUE:
                self._hits["intersect"] += hits
                self._misses["intersect"] += len(visited)
                return True
            if g < f:
                f, g = g, f
            pair = (f, g)
            if pair in visited:
                continue
            if pair in disjoint:
                hits += 1
                continue
            cached = and_cache.get(pair)
            if cached is not None:
                hits += 1
                if cached == _FALSE:
                    continue
                self._hits["intersect"] += hits
                self._misses["intersect"] += len(visited)
                return True
            visited.add(pair)
            fv, gv = var_arr[f], var_arr[g]
            if fv <= gv:
                f0, f1 = low_arr[f], high_arr[f]
            else:
                f0 = f1 = f
            if gv <= fv:
                g0, g1 = low_arr[g], high_arr[g]
            else:
                g0 = g1 = g
            stack.append((f1, g1))
            stack.append((f0, g0))
        # Exhausted without finding a common path: every visited pair is
        # a proven-empty intersection.
        disjoint.update(visited)
        self._hits["intersect"] += hits
        self._misses["intersect"] += len(visited)
        return False

    # -- raw-id dispatch helpers -------------------------------------------------
    # Internal algorithms (quantification, conjoin/disjoin) call these so
    # they use the specialized kernels when enabled and fall back to the
    # generic ite core in compatibility mode.

    def _land(self, a: int, b: int) -> int:
        if self.fast_kernels:
            return self._and(a, b)
        return self._ite(a, b, _FALSE)

    def _lor(self, a: int, b: int) -> int:
        if self.fast_kernels:
            return self._or(a, b)
        return self._ite(a, _TRUE, b)

    # -- connectives ------------------------------------------------------------
    def _check(self, *operands: Bdd) -> None:
        for operand in operands:
            if operand.manager is not self:
                raise ValueError("operands belong to different BddManagers")

    def ite(self, f: Bdd, g: Bdd, h: Bdd) -> Bdd:
        """``if f then g else h``."""
        self._check(f, g, h)
        perf.add("bdd.applies")
        return Bdd(self, self._ite(f.node, g.node, h.node))

    def apply_and(self, a: Bdd, b: Bdd) -> Bdd:
        """Conjunction of two functions."""
        if a.manager is not self or b.manager is not self:
            raise ValueError("operands belong to different BddManagers")
        perf.add("bdd.applies")
        if self.fast_kernels:
            return Bdd(self, self._and(a.node, b.node))
        return Bdd(self, self._ite(a.node, b.node, _FALSE))

    def apply_or(self, a: Bdd, b: Bdd) -> Bdd:
        """Disjunction of two functions."""
        if a.manager is not self or b.manager is not self:
            raise ValueError("operands belong to different BddManagers")
        perf.add("bdd.applies")
        if self.fast_kernels:
            return Bdd(self, self._or(a.node, b.node))
        return Bdd(self, self._ite(a.node, _TRUE, b.node))

    def apply_xor(self, a: Bdd, b: Bdd) -> Bdd:
        """Exclusive-or of two functions."""
        if a.manager is not self or b.manager is not self:
            raise ValueError("operands belong to different BddManagers")
        perf.add("bdd.applies")
        if self.fast_kernels:
            return Bdd(self, self._xor(a.node, b.node))
        not_b = self._ite(b.node, _FALSE, _TRUE)
        return Bdd(self, self._ite(a.node, not_b, b.node))

    def apply_not(self, a: Bdd) -> Bdd:
        """Negation of a function."""
        if a.manager is not self:
            raise ValueError("operands belong to different BddManagers")
        perf.add("bdd.applies")
        if self.fast_kernels:
            return Bdd(self, self._not(a.node))
        return Bdd(self, self._ite(a.node, _FALSE, _TRUE))

    def apply_diff(self, a: Bdd, b: Bdd) -> Bdd:
        """``a & ~b`` without materializing ``~b`` separately."""
        if a.manager is not self or b.manager is not self:
            raise ValueError("operands belong to different BddManagers")
        perf.add("bdd.applies")
        if self.fast_kernels:
            return Bdd(self, self._diff(a.node, b.node))
        not_b = self._ite(b.node, _FALSE, _TRUE)
        return Bdd(self, self._ite(a.node, not_b, _FALSE))

    def intersects(self, a: Bdd, b: Bdd) -> bool:
        """Decide whether ``a & b`` is satisfiable (no result BDD built)."""
        if a.manager is not self or b.manager is not self:
            raise ValueError("operands belong to different BddManagers")
        perf.add("bdd.applies")
        if self.fast_kernels:
            return self._intersects(a.node, b.node)
        return self._ite(a.node, b.node, _FALSE) != _FALSE

    def conjoin(self, operands: Iterable[Bdd]) -> Bdd:
        """AND of an iterable (TRUE for the empty iterable)."""
        acc = _TRUE
        for operand in operands:
            self._check(operand)
            perf.add("bdd.applies")
            acc = self._land(acc, operand.node)
            if acc == _FALSE:
                break
        return Bdd(self, acc)

    def disjoin(self, operands: Iterable[Bdd]) -> Bdd:
        """OR of an iterable (FALSE for the empty iterable)."""
        acc = _FALSE
        for operand in operands:
            self._check(operand)
            perf.add("bdd.applies")
            acc = self._lor(acc, operand.node)
            if acc == _TRUE:
                break
        return Bdd(self, acc)

    # -- restriction & quantification ------------------------------------------
    def restrict(self, f: Bdd, assignment: Dict[int, bool]) -> Bdd:
        """Substitute constants for the variables in ``assignment``."""
        self._check(f)
        if not assignment:
            return f
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        cache: Dict[int, int] = {}
        stack = [f.node]
        while stack:
            node = stack[-1]
            if node <= _TRUE or node in cache:
                stack.pop()
                continue
            var = var_arr[node]
            if var in assignment:
                child = high_arr[node] if assignment[var] else low_arr[node]
                if child <= _TRUE or child in cache:
                    stack.pop()
                    cache[node] = child if child <= _TRUE else cache[child]
                else:
                    stack.append(child)
                continue
            low, high = low_arr[node], high_arr[node]
            low_ready = low <= _TRUE or low in cache
            high_ready = high <= _TRUE or high in cache
            if low_ready and high_ready:
                stack.pop()
                low_res = low if low <= _TRUE else cache[low]
                high_res = high if high <= _TRUE else cache[high]
                cache[node] = self._mk(var, low_res, high_res)
            else:
                if not high_ready:
                    stack.append(high)
                if not low_ready:
                    stack.append(low)
        node = f.node
        return Bdd(self, node if node <= _TRUE else cache[node])

    def exists(self, f: Bdd, variables: Sequence[int]) -> Bdd:
        """Existential quantification over ``variables``."""
        return self._quantify(f, frozenset(variables), is_exists=True)

    def forall(self, f: Bdd, variables: Sequence[int]) -> Bdd:
        """Universal quantification over ``variables``."""
        return self._quantify(f, frozenset(variables), is_exists=False)

    def _quantify(self, f: Bdd, variables: frozenset, is_exists: bool) -> Bdd:
        self._check(f)
        if not variables:
            return f
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        combine = self._lor if is_exists else self._land
        cache: Dict[int, int] = {}
        stack = [f.node]
        while stack:
            node = stack[-1]
            if node <= _TRUE or node in cache:
                stack.pop()
                continue
            low, high = low_arr[node], high_arr[node]
            low_ready = low <= _TRUE or low in cache
            high_ready = high <= _TRUE or high in cache
            if low_ready and high_ready:
                stack.pop()
                low_res = low if low <= _TRUE else cache[low]
                high_res = high if high <= _TRUE else cache[high]
                var = var_arr[node]
                if var in variables:
                    cache[node] = combine(low_res, high_res)
                else:
                    cache[node] = self._mk(var, low_res, high_res)
            else:
                if not high_ready:
                    stack.append(high)
                if not low_ready:
                    stack.append(low)
        node = f.node
        return Bdd(self, node if node <= _TRUE else cache[node])

    # -- queries ---------------------------------------------------------------
    def _count_below(self, root: int, nvars: int) -> int:
        """Model count of ``root`` over variables strictly below its level.

        Memoized in ``_satcount_cache`` keyed ``(node, nvars)``; shared by
        :meth:`satcount` and :meth:`uniform_model`.
        """
        if root == _FALSE:
            return 0
        if root == _TRUE:
            return 1
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        cache = self._satcount_cache

        def level(node: int) -> int:
            return var_arr[node] if node > _TRUE else nvars

        def resolved(node: int) -> Optional[int]:
            if node == _FALSE:
                return 0
            if node == _TRUE:
                return 1
            return cache.get((node, nvars))

        stack = [root]
        while stack:
            node = stack[-1]
            if node <= _TRUE or (node, nvars) in cache:
                stack.pop()
                continue
            low, high = low_arr[node], high_arr[node]
            low_res = resolved(low)
            high_res = resolved(high)
            if low_res is not None and high_res is not None:
                stack.pop()
                var = var_arr[node]
                cache[(node, nvars)] = low_res * (
                    1 << (level(low) - var - 1)
                ) + high_res * (1 << (level(high) - var - 1))
            else:
                if high_res is None:
                    stack.append(high)
                if low_res is None:
                    stack.append(low)
        return cache[(root, nvars)]

    def satcount(self, f: Bdd, nvars: Optional[int] = None) -> int:
        """Count satisfying assignments of ``f`` over ``nvars`` variables."""
        self._check(f)
        if nvars is None:
            nvars = self._num_vars
        if nvars < 0:
            raise ValueError(f"nvars must be non-negative, got {nvars}")
        node = f.node
        top_level = self._var[node] if node > _TRUE else nvars
        return self._count_below(node, nvars) * (1 << top_level)

    def support(self, f: Bdd) -> List[int]:
        """Sorted variable indices appearing in ``f``."""
        self._check(f)
        seen: set = set()
        variables: set = set()
        stack = [f.node]
        while stack:
            node = stack.pop()
            if node <= _TRUE or node in seen:
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(variables)

    def any_model(self, f: Bdd) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment, or ``None`` if unsatisfiable.

        Follows a deterministic low-first descent, so repeated calls on the
        same function return the same model (important for reproducible
        baseline counterexamples).
        """
        self._check(f)
        node = f.node
        if node == _FALSE:
            return None
        model: Dict[int, bool] = {}
        while node > _TRUE:
            if self._low[node] != _FALSE:
                model[self._var[node]] = False
                node = self._low[node]
            else:
                model[self._var[node]] = True
                node = self._high[node]
        return model

    def uniform_model(self, f: Bdd, rng, nvars: Optional[int] = None) -> Optional[Dict[int, bool]]:
        """A *total* model sampled uniformly from ``f``'s satisfying set.

        Each descent step weights the low/high branch by its model count,
        and variables skipped on the path are assigned by fair coin flips,
        giving exactly uniform sampling.  The iterated-counterexample
        baseline (§2.1) uses this to emulate the varied models an SMT
        solver returns — deterministic lexicographic models would step
        through single addresses and never cover the interesting ranges.
        """
        self._check(f)
        if f.node == _FALSE:
            return None
        if nvars is None:
            nvars = self._num_vars

        model: Dict[int, bool] = {}
        node = f.node
        level = 0
        while True:
            node_level = self._var[node] if node > _TRUE else nvars
            # Variables between the current level and the node are free.
            for free in range(level, min(node_level, nvars)):
                model[free] = bool(rng.getrandbits(1))
            if node <= _TRUE:
                break
            var = self._var[node]
            low, high = self._low[node], self._high[node]
            low_level = self._var[low] if low > _TRUE else nvars
            high_level = self._var[high] if high > _TRUE else nvars
            low_weight = self._count_below(low, nvars) * (1 << (low_level - var - 1))
            high_weight = self._count_below(high, nvars) * (1 << (high_level - var - 1))
            pick_high = rng.randrange(low_weight + high_weight) < high_weight
            model[var] = pick_high
            node = high if pick_high else low
            level = var + 1
        return model

    def random_cube_model(self, f: Bdd, rng, nvars: Optional[int] = None) -> Optional[Dict[int, bool]]:
        """A total model sampled uniformly over ``f``'s *cubes* (paths to
        TRUE), with off-path variables filled by coin flips.

        Point-uniform sampling (:meth:`uniform_model`) weights regions by
        cardinality, which buries structurally small regions; sampling by
        path instead gives every branch-distinct region similar mass —
        much closer to how an SMT solver's successive models hop between
        structural cases, which is what the §2.1 iterated-counterexample
        experiment depends on.
        """
        self._check(f)
        if f.node == _FALSE:
            return None
        if nvars is None:
            nvars = self._num_vars
        model = dict(self.random_cube(f, rng) or {})
        for index in range(nvars):
            if index not in model:
                model[index] = bool(rng.getrandbits(1))
        return model

    def random_cube(self, f: Bdd, rng) -> Optional[Dict[int, bool]]:
        """A path-uniform random cube: the partial assignment along one
        uniformly-chosen BDD path to TRUE (off-path variables omitted)."""
        self._check(f)
        if f.node == _FALSE:
            return None
        low_arr, high_arr = self._low, self._high

        path_counts: Dict[int, int] = {_FALSE: 0, _TRUE: 1}
        stack = [f.node]
        while stack:
            node = stack[-1]
            if node in path_counts:
                stack.pop()
                continue
            low, high = low_arr[node], high_arr[node]
            low_res = path_counts.get(low)
            high_res = path_counts.get(high)
            if low_res is not None and high_res is not None:
                stack.pop()
                path_counts[node] = low_res + high_res
            else:
                if high_res is None:
                    stack.append(high)
                if low_res is None:
                    stack.append(low)

        cube: Dict[int, bool] = {}
        node = f.node
        while node > _TRUE:
            var = self._var[node]
            low_paths = path_counts[low_arr[node]]
            high_paths = path_counts[high_arr[node]]
            pick_high = rng.randrange(low_paths + high_paths) < high_paths
            cube[var] = pick_high
            node = high_arr[node] if pick_high else low_arr[node]
        return cube

    def iter_cubes(self, f: Bdd) -> Iterator[Dict[int, bool]]:
        """Yield all prime paths to TRUE as partial assignments (cubes).

        Each cube assigns only the variables on its BDD path; absent
        variables are don't-cares.  The cubes are disjoint and their union
        is exactly ``f``.  The traversal is an explicit-stack DFS (low
        branch first, matching the historical recursive order) with the
        partial assignment kept as a parent-linked chain, so arbitrarily
        deep BDDs enumerate without recursion.
        """
        self._check(f)
        low_arr, high_arr, var_arr = self._low, self._high, self._var
        # Stack entries: (node, chain) where chain is (var, value, parent).
        stack: List[Tuple[int, Optional[Tuple[int, bool, Optional[tuple]]]]] = [
            (f.node, None)
        ]
        while stack:
            node, chain = stack.pop()
            if node == _FALSE:
                continue
            if node == _TRUE:
                assignments = []
                link = chain
                while link is not None:
                    var, value, link = link
                    assignments.append((var, value))
                yield dict(reversed(assignments))
                continue
            var = var_arr[node]
            stack.append((high_arr[node], (var, True, chain)))
            stack.append((low_arr[node], (var, False, chain)))

    def dag_size(self, f: Bdd) -> int:
        """Number of decision nodes reachable from ``f`` (terminals excluded)."""
        self._check(f)
        seen: set = set()
        stack = [f.node]
        while stack:
            node = stack.pop()
            if node <= _TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)
