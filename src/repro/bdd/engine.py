"""A reduced ordered binary decision diagram (ROBDD) engine.

This module is a from-scratch substitute for the JavaBDD library used by
Campion.  It implements hash-consed ROBDD nodes with an if-then-else (ite)
core, the standard boolean connectives, restriction, existential and
universal quantification, satisfiability counting, and variable support
computation.

Design notes
------------
* Nodes are stored in flat parallel lists (``_var``, ``_low``, ``_high``)
  indexed by integer node ids.  Ids 0 and 1 are the terminal FALSE and TRUE
  nodes.  This "struct of arrays" layout keeps the engine allocation-light,
  which matters because SemanticDiff on 10,000-rule ACLs creates millions of
  nodes.
* A unique table (``_unique``) maps ``(var, low, high)`` triples to node ids
  so that structurally equal subgraphs share one node; BDD equality is then
  id equality, which is what makes the pairwise intersection tests in
  SemanticDiff cheap.
* Operation results are memoized in ``_ite_cache`` keyed on the operand ids.
  The cache is never invalidated because nodes are immortal for the life of
  the manager; Campion's workloads are one-shot comparisons so this is the
  right trade-off.
* Variable order is the order of :meth:`BddManager.new_var` calls.  Callers
  that care about ordering (see ``benchmarks/bench_ablation_var_order.py``)
  allocate variables accordingly.

The public surface is :class:`BddManager` and the lightweight :class:`Bdd`
wrapper, which supports ``&``, ``|``, ``^``, ``~`` and ``-`` (set
difference) operators so that the algorithm code reads like the paper's
set algebra.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Bdd", "BddManager"]

# Terminal node ids.  They are the same in every manager.
_FALSE = 0
_TRUE = 1

# Sentinel variable index for terminals: larger than any real variable so
# that terminals sort below all decision nodes in the variable order.
_TERMINAL_LEVEL = 1 << 30


class Bdd:
    """An immutable boolean function handle bound to a :class:`BddManager`.

    Instances are value objects: two ``Bdd`` handles from the same manager
    denote the same function if and only if their node ids are equal, so
    ``==`` and hashing are O(1).
    """

    __slots__ = ("manager", "node")

    def __init__(self, manager: "BddManager", node: int):
        self.manager = manager
        self.node = node

    # -- identity ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bdd):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.node == _FALSE:
            return "Bdd(FALSE)"
        if self.node == _TRUE:
            return "Bdd(TRUE)"
        return f"Bdd(node={self.node}, var={self.manager._var[self.node]})"

    # -- predicates -------------------------------------------------------
    def is_false(self) -> bool:
        """True when this function is unsatisfiable."""
        return self.node == _FALSE

    def is_true(self) -> bool:
        """True when this function is a tautology."""
        return self.node == _TRUE

    def __bool__(self) -> bool:
        """Truthiness is satisfiability, matching set-intuition (`if s:`)."""
        return self.node != _FALSE

    # -- connectives ------------------------------------------------------
    def __and__(self, other: "Bdd") -> "Bdd":
        return self.manager.apply_and(self, other)

    def __or__(self, other: "Bdd") -> "Bdd":
        return self.manager.apply_or(self, other)

    def __xor__(self, other: "Bdd") -> "Bdd":
        return self.manager.apply_xor(self, other)

    def __invert__(self) -> "Bdd":
        return self.manager.apply_not(self)

    def __sub__(self, other: "Bdd") -> "Bdd":
        """Set difference: ``self & ~other``."""
        return self.manager.apply_diff(self, other)

    # -- relational helpers -------------------------------------------------
    def implies(self, other: "Bdd") -> bool:
        """Decide ``self => other`` (set containment)."""
        return self.manager.apply_diff(self, other).is_false()

    def intersects(self, other: "Bdd") -> bool:
        """Decide whether the two sets share any element."""
        return not self.manager.apply_and(self, other).is_false()

    # -- queries ------------------------------------------------------------
    def satcount(self, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        Defaults to all variables currently allocated in the manager.
        """
        return self.manager.satcount(self, nvars)

    def support(self) -> List[int]:
        """Sorted list of variable indices this function depends on."""
        return self.manager.support(self)

    def any_model(self) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (partial: unmentioned vars are free)."""
        return self.manager.any_model(self)


class BddManager:
    """Owner of all BDD nodes, the unique table, and operation caches."""

    def __init__(self) -> None:
        # Parallel node arrays.  Slots 0/1 are the FALSE/TRUE terminals.
        self._var: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._satcount_cache: Dict[Tuple[int, int], int] = {}
        self._num_vars = 0
        self.false = Bdd(self, _FALSE)
        self.true = Bdd(self, _TRUE)

    # -- variable management ------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of decision variables allocated so far."""
        return self._num_vars

    def new_var(self) -> Bdd:
        """Allocate the next variable in the global order and return it."""
        var = self._num_vars
        self._num_vars += 1
        return Bdd(self, self._mk(var, _FALSE, _TRUE))

    def new_vars(self, count: int) -> List[Bdd]:
        """Allocate ``count`` consecutive variables."""
        if count < 0:
            raise ValueError(f"variable count must be non-negative, got {count}")
        return [self.new_var() for _ in range(count)]

    def var(self, index: int) -> Bdd:
        """The positive literal of an already-allocated variable."""
        if not 0 <= index < self._num_vars:
            raise IndexError(f"variable {index} not allocated (have {self._num_vars})")
        return Bdd(self, self._mk(index, _FALSE, _TRUE))

    def nvar(self, index: int) -> Bdd:
        """The negative literal of an already-allocated variable."""
        if not 0 <= index < self._num_vars:
            raise IndexError(f"variable {index} not allocated (have {self._num_vars})")
        return Bdd(self, self._mk(index, _TRUE, _FALSE))

    def constant(self, value: bool) -> Bdd:
        """The constant TRUE or FALSE function."""
        return self.true if value else self.false

    @property
    def node_count(self) -> int:
        """Total number of allocated nodes, including the two terminals."""
        return len(self._var)

    # -- node construction ----------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` with reduction."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    # -- ite core ---------------------------------------------------------------
    def _ite(self, f: int, g: int, h: int) -> int:
        """If-then-else on raw node ids; every connective reduces to this."""
        # Terminal short-circuits.
        if f == _TRUE:
            return g
        if f == _FALSE:
            return h
        if g == h:
            return g
        if g == _TRUE and h == _FALSE:
            return f

        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached

        var_arr, low_arr, high_arr = self._var, self._low, self._high
        top = min(var_arr[f], var_arr[g], var_arr[h])

        if var_arr[f] == top:
            f0, f1 = low_arr[f], high_arr[f]
        else:
            f0 = f1 = f
        if var_arr[g] == top:
            g0, g1 = low_arr[g], high_arr[g]
        else:
            g0 = g1 = g
        if var_arr[h] == top:
            h0, h1 = low_arr[h], high_arr[h]
        else:
            h0 = h1 = h

        low = self._ite(f0, g0, h0)
        high = self._ite(f1, g1, h1)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    # -- connectives ------------------------------------------------------------
    def _check(self, *operands: Bdd) -> None:
        for operand in operands:
            if operand.manager is not self:
                raise ValueError("operands belong to different BddManagers")

    def ite(self, f: Bdd, g: Bdd, h: Bdd) -> Bdd:
        """``if f then g else h``."""
        self._check(f, g, h)
        return Bdd(self, self._ite(f.node, g.node, h.node))

    def apply_and(self, a: Bdd, b: Bdd) -> Bdd:
        """Conjunction of two functions."""
        self._check(a, b)
        return Bdd(self, self._ite(a.node, b.node, _FALSE))

    def apply_or(self, a: Bdd, b: Bdd) -> Bdd:
        """Disjunction of two functions."""
        self._check(a, b)
        return Bdd(self, self._ite(a.node, _TRUE, b.node))

    def apply_xor(self, a: Bdd, b: Bdd) -> Bdd:
        """Exclusive-or of two functions."""
        self._check(a, b)
        not_b = self._ite(b.node, _FALSE, _TRUE)
        return Bdd(self, self._ite(a.node, not_b, b.node))

    def apply_not(self, a: Bdd) -> Bdd:
        """Negation of a function."""
        self._check(a)
        return Bdd(self, self._ite(a.node, _FALSE, _TRUE))

    def apply_diff(self, a: Bdd, b: Bdd) -> Bdd:
        """``a & ~b`` without materializing ``~b`` separately."""
        self._check(a, b)
        not_b = self._ite(b.node, _FALSE, _TRUE)
        return Bdd(self, self._ite(a.node, not_b, _FALSE))

    def conjoin(self, operands: Iterable[Bdd]) -> Bdd:
        """AND of an iterable (TRUE for the empty iterable)."""
        acc = _TRUE
        for operand in operands:
            self._check(operand)
            acc = self._ite(acc, operand.node, _FALSE)
            if acc == _FALSE:
                break
        return Bdd(self, acc)

    def disjoin(self, operands: Iterable[Bdd]) -> Bdd:
        """OR of an iterable (FALSE for the empty iterable)."""
        acc = _FALSE
        for operand in operands:
            self._check(operand)
            acc = self._ite(acc, _TRUE, operand.node)
            if acc == _TRUE:
                break
        return Bdd(self, acc)

    # -- restriction & quantification ------------------------------------------
    def restrict(self, f: Bdd, assignment: Dict[int, bool]) -> Bdd:
        """Substitute constants for the variables in ``assignment``."""
        self._check(f)
        if not assignment:
            return f
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= _TRUE:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            var = self._var[node]
            if var in assignment:
                result = walk(self._high[node] if assignment[var] else self._low[node])
            else:
                result = self._mk(var, walk(self._low[node]), walk(self._high[node]))
            cache[node] = result
            return result

        return Bdd(self, walk(f.node))

    def exists(self, f: Bdd, variables: Sequence[int]) -> Bdd:
        """Existential quantification over ``variables``."""
        return self._quantify(f, frozenset(variables), is_exists=True)

    def forall(self, f: Bdd, variables: Sequence[int]) -> Bdd:
        """Universal quantification over ``variables``."""
        return self._quantify(f, frozenset(variables), is_exists=False)

    def _quantify(self, f: Bdd, variables: frozenset, is_exists: bool) -> Bdd:
        self._check(f)
        if not variables:
            return f
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= _TRUE:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            var = self._var[node]
            low = walk(self._low[node])
            high = walk(self._high[node])
            if var in variables:
                if is_exists:
                    result = self._ite(low, _TRUE, high)  # low | high
                else:
                    result = self._ite(low, high, _FALSE)  # low & high
            else:
                result = self._mk(var, low, high)
            cache[node] = result
            return result

        return Bdd(self, walk(f.node))

    # -- queries ---------------------------------------------------------------
    def satcount(self, f: Bdd, nvars: Optional[int] = None) -> int:
        """Count satisfying assignments of ``f`` over ``nvars`` variables."""
        self._check(f)
        if nvars is None:
            nvars = self._num_vars
        if nvars < 0:
            raise ValueError(f"nvars must be non-negative, got {nvars}")

        def count(node: int) -> Tuple[int, int]:
            """Return (count, level) where count is over vars below level."""
            if node == _FALSE:
                return 0, nvars
            if node == _TRUE:
                return 1, nvars
            key = (node, nvars)
            hit = self._satcount_cache.get(key)
            if hit is not None:
                return hit, self._var[node]
            var = self._var[node]
            low_count, low_level = count(self._low[node])
            high_count, high_level = count(self._high[node])
            total = low_count * (1 << (low_level - var - 1)) + high_count * (
                1 << (high_level - var - 1)
            )
            self._satcount_cache[key] = total
            return total, var

        top_count, top_level = count(f.node)
        return top_count * (1 << top_level)

    def support(self, f: Bdd) -> List[int]:
        """Sorted variable indices appearing in ``f``."""
        self._check(f)
        seen: set = set()
        variables: set = set()
        stack = [f.node]
        while stack:
            node = stack.pop()
            if node <= _TRUE or node in seen:
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(variables)

    def any_model(self, f: Bdd) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment, or ``None`` if unsatisfiable.

        Follows a deterministic low-first descent, so repeated calls on the
        same function return the same model (important for reproducible
        baseline counterexamples).
        """
        self._check(f)
        node = f.node
        if node == _FALSE:
            return None
        model: Dict[int, bool] = {}
        while node > _TRUE:
            if self._low[node] != _FALSE:
                model[self._var[node]] = False
                node = self._low[node]
            else:
                model[self._var[node]] = True
                node = self._high[node]
        return model

    def uniform_model(self, f: Bdd, rng, nvars: Optional[int] = None) -> Optional[Dict[int, bool]]:
        """A *total* model sampled uniformly from ``f``'s satisfying set.

        Each descent step weights the low/high branch by its model count,
        and variables skipped on the path are assigned by fair coin flips,
        giving exactly uniform sampling.  The iterated-counterexample
        baseline (§2.1) uses this to emulate the varied models an SMT
        solver returns — deterministic lexicographic models would step
        through single addresses and never cover the interesting ranges.
        """
        self._check(f)
        if f.node == _FALSE:
            return None
        if nvars is None:
            nvars = self._num_vars

        def count(node: int) -> int:
            # Models over variables strictly below the node's level.
            if node == _FALSE:
                return 0
            if node == _TRUE:
                return 1
            key = (node, nvars)
            hit = self._satcount_cache.get(key)
            if hit is not None:
                return hit
            var = self._var[node]
            low, high = self._low[node], self._high[node]
            low_level = self._var[low] if low > _TRUE else nvars
            high_level = self._var[high] if high > _TRUE else nvars
            total = count(low) * (1 << (low_level - var - 1)) + count(high) * (
                1 << (high_level - var - 1)
            )
            self._satcount_cache[key] = total
            return total

        model: Dict[int, bool] = {}
        node = f.node
        level = 0
        while True:
            node_level = self._var[node] if node > _TRUE else nvars
            # Variables between the current level and the node are free.
            for free in range(level, min(node_level, nvars)):
                model[free] = bool(rng.getrandbits(1))
            if node <= _TRUE:
                break
            var = self._var[node]
            low, high = self._low[node], self._high[node]
            low_level = self._var[low] if low > _TRUE else nvars
            high_level = self._var[high] if high > _TRUE else nvars
            low_weight = count(low) * (1 << (low_level - var - 1))
            high_weight = count(high) * (1 << (high_level - var - 1))
            pick_high = rng.randrange(low_weight + high_weight) < high_weight
            model[var] = pick_high
            node = high if pick_high else low
            level = var + 1
        return model

    def random_cube_model(self, f: Bdd, rng, nvars: Optional[int] = None) -> Optional[Dict[int, bool]]:
        """A total model sampled uniformly over ``f``'s *cubes* (paths to
        TRUE), with off-path variables filled by coin flips.

        Point-uniform sampling (:meth:`uniform_model`) weights regions by
        cardinality, which buries structurally small regions; sampling by
        path instead gives every branch-distinct region similar mass —
        much closer to how an SMT solver's successive models hop between
        structural cases, which is what the §2.1 iterated-counterexample
        experiment depends on.
        """
        self._check(f)
        if f.node == _FALSE:
            return None
        if nvars is None:
            nvars = self._num_vars
        model = dict(self.random_cube(f, rng) or {})
        for index in range(nvars):
            if index not in model:
                model[index] = bool(rng.getrandbits(1))
        return model

    def random_cube(self, f: Bdd, rng) -> Optional[Dict[int, bool]]:
        """A path-uniform random cube: the partial assignment along one
        uniformly-chosen BDD path to TRUE (off-path variables omitted)."""
        self._check(f)
        if f.node == _FALSE:
            return None

        path_counts: Dict[int, int] = {_FALSE: 0, _TRUE: 1}

        def paths(node: int) -> int:
            hit = path_counts.get(node)
            if hit is not None:
                return hit
            total = paths(self._low[node]) + paths(self._high[node])
            path_counts[node] = total
            return total

        cube: Dict[int, bool] = {}
        node = f.node
        while node > _TRUE:
            var = self._var[node]
            low_paths = paths(self._low[node])
            high_paths = paths(self._high[node])
            pick_high = rng.randrange(low_paths + high_paths) < high_paths
            cube[var] = pick_high
            node = self._high[node] if pick_high else self._low[node]
        return cube

    def iter_cubes(self, f: Bdd) -> Iterator[Dict[int, bool]]:
        """Yield all prime paths to TRUE as partial assignments (cubes).

        Each cube assigns only the variables on its BDD path; absent
        variables are don't-cares.  The cubes are disjoint and their union
        is exactly ``f``.
        """
        self._check(f)

        def walk(node: int, acc: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if node == _FALSE:
                return
            if node == _TRUE:
                yield dict(acc)
                return
            var = self._var[node]
            acc[var] = False
            yield from walk(self._low[node], acc)
            acc[var] = True
            yield from walk(self._high[node], acc)
            del acc[var]

        yield from walk(f.node, {})

    def dag_size(self, f: Bdd) -> int:
        """Number of decision nodes reachable from ``f`` (terminals excluded)."""
        self._check(f)
        seen: set = set()
        stack = [f.node]
        while stack:
            node = stack.pop()
            if node <= _TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)
