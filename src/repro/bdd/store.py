"""Node stores for the ROBDD engine: where (var, low, high) triples live.

The engine's original layout kept nodes in three parallel Python lists
plus a ``dict`` unique table keyed by ``(var, low, high)`` tuples.  That
is simple and fast to look up, but on SemanticDiff workloads that
allocate millions of nodes the *memory* story dominates: every node
costs three boxed ints in the lists plus a three-element key tuple and
a boxed value in the dict — several hundred bytes per node once dict
load factors are counted.

:class:`FlatNodeStore` keeps the node columns as flat int lists (list
indexing returns the stored int objects directly — an ``array('q')``
column would box a fresh int on every read, and the kernels read the
columns an order of magnitude more often than they create nodes) and
replaces the unique table with an open-addressed, linear-probing hash
table whose slots are node ids in a single ``array('q')`` — no key
tuples and no dict entries at all, because the key of a stored node can
be read back out of the node columns.  At a two-thirds load ceiling the
table costs 12–24 bytes per node where the tuple-keyed dict cost well
over a hundred, which is what lets SemanticDiff's million-node managers
fit hot caches.

Slot value 0 marks an empty slot: the terminals (ids 0 and 1) are
created structurally, never stored in the table, so every table entry
is a decision node with id >= 2.

Both stores expose the same tiny surface — ``var``/``low``/``high``
sequences, :meth:`mk`, ``unique_entries`` — and both route fresh
allocations through an optional ``budget_check`` hook, which the
manager arms with its node/deadline budget.  Centralizing creation here
means *every* kernel allocation site honours the budget (the historical
inline fast paths checked it only in ``BddManager._mk``).

Store selection: the ``store`` argument of :class:`~.engine.BddManager`
(``"flat"``/``"dict"`` or an instance), else the ``CAMPION_BDD_STORE``
environment variable, else ``"flat"``.
"""

from __future__ import annotations

import os
from array import array
from typing import Callable, Dict, Optional, Tuple, Union

__all__ = [
    "BDD_STORE_ENV",
    "DEFAULT_STORE",
    "STORE_NAMES",
    "DictNodeStore",
    "FlatNodeStore",
    "resolve_store",
]

BDD_STORE_ENV = "CAMPION_BDD_STORE"
DEFAULT_STORE = "flat"
STORE_NAMES = ("flat", "dict")

# Terminal ids, mirrored from the engine (kept literal to avoid a
# circular import; the engine asserts they agree).
_FALSE = 0
_TRUE = 1

# Sentinel variable index for terminals (engine._TERMINAL_LEVEL).
_TERMINAL_LEVEL = 1 << 30

# Multiplicative mixing constants for the open-addressed table (odd,
# high-entropy — the classic Knuth/xxHash style multipliers).
_MIX1 = 0x9E3779B1
_MIX2 = 0x85EBCA77
_MIX3 = 0xC2B2AE3D

#: Initial unique-table capacity (slots, power of two).
_INITIAL_CAPACITY = 1 << 12


class FlatNodeStore:
    """Struct-of-arrays node storage with an open-addressed unique table.

    ``var``/``low``/``high`` are flat int lists indexed by node id; the
    unique table is a power-of-two ``array('q')`` of node ids probed
    linearly.  The table grows (doubling, rehash by re-inserting every
    decision node) when occupancy passes two thirds, so probes stay
    short on every workload size.
    """

    kind = "flat"

    __slots__ = ("var", "low", "high", "_table", "_mask", "_used", "budget_check")

    def __init__(self) -> None:
        self.var = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self.low = [0, 1]
        self.high = [0, 1]
        self._table = array("q", bytes(8 * _INITIAL_CAPACITY))
        self._mask = _INITIAL_CAPACITY - 1
        self._used = 0
        #: Armed by the manager; called before every fresh allocation.
        self.budget_check: Optional[Callable[[], None]] = None

    def __len__(self) -> int:
        return len(self.var)

    @property
    def unique_entries(self) -> int:
        """Decision nodes in the unique table (terminals excluded)."""
        return self._used

    def mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` with reduction."""
        if low == high:
            return low
        table = self._table
        mask = self._mask
        var_arr, low_arr, high_arr = self.var, self.low, self.high
        slot = (var * _MIX1 ^ low * _MIX2 ^ high * _MIX3) & mask
        node = table[slot]
        while node:
            if (
                low_arr[node] == low
                and high_arr[node] == high
                and var_arr[node] == var
            ):
                return node
            slot = (slot + 1) & mask
            node = table[slot]
        if self.budget_check is not None:
            self.budget_check()
        node = len(var_arr)
        var_arr.append(var)
        low_arr.append(low)
        high_arr.append(high)
        table[slot] = node
        self._used += 1
        if self._used * 3 > mask * 2:
            self._grow()
        return node

    def _grow(self) -> None:
        """Double the table and re-insert every decision node."""
        capacity = (self._mask + 1) << 1
        table = array("q", bytes(8 * capacity))
        mask = capacity - 1
        var_arr, low_arr, high_arr = self.var, self.low, self.high
        for node in range(2, len(var_arr)):
            slot = (
                var_arr[node] * _MIX1
                ^ low_arr[node] * _MIX2
                ^ high_arr[node] * _MIX3
            ) & mask
            while table[slot]:
                slot = (slot + 1) & mask
            table[slot] = node
        self._table = table
        self._mask = mask


class DictNodeStore:
    """The historical layout: Python lists plus a tuple-keyed dict.

    Kept as a selectable fallback (``CAMPION_BDD_STORE=dict``) and as
    the reference implementation the flat store's tests compare
    against.
    """

    kind = "dict"

    __slots__ = ("var", "low", "high", "_unique", "budget_check")

    def __init__(self) -> None:
        self.var = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self.low = [0, 1]
        self.high = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self.budget_check: Optional[Callable[[], None]] = None

    def __len__(self) -> int:
        return len(self.var)

    @property
    def unique_entries(self) -> int:
        """Decision nodes in the unique table (terminals excluded)."""
        return len(self._unique)

    def mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` with reduction."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            if self.budget_check is not None:
                self.budget_check()
            node = len(self.var)
            self.var.append(var)
            self.low.append(low)
            self.high.append(high)
            self._unique[key] = node
        return node


NodeStore = Union[FlatNodeStore, DictNodeStore]

_STORE_CLASSES = {"flat": FlatNodeStore, "dict": DictNodeStore}


def resolve_store(spec: Union[None, str, NodeStore] = None) -> NodeStore:
    """Resolve a store spec to a fresh (or passed-through) instance.

    ``spec`` may be a store instance (returned as-is — it must be
    empty/fresh, since the manager seeds terminals through it), a name
    from ``STORE_NAMES``, or ``None`` — which consults the
    ``CAMPION_BDD_STORE`` environment variable and defaults to
    ``"flat"``.
    """
    if spec is None:
        spec = os.environ.get(BDD_STORE_ENV, "").strip() or DEFAULT_STORE
    if isinstance(spec, str):
        cls = _STORE_CLASSES.get(spec)
        if cls is None:
            raise ValueError(
                f"unknown BDD node store {spec!r}; "
                f"expected one of {', '.join(STORE_NAMES)}"
            )
        return cls()
    return spec
