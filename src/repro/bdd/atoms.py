"""Atomic-predicate refinement of two path partitions.

The classic trick for scaling predicate algebra in network verification
(Yang & Lam's atomic predicates; Plankton's equivalence-class reduction)
is to refine a predicate family into *atoms* — the coarsest partition of
the input space such that every predicate is a disjoint union of atoms —
after which intersection, emptiness, and difference collapse to bitwise
operations on machine integers.

SemanticDiff needs exactly the two-family special case, and both
families are already partitions (path equivalence classes are pairwise
disjoint and cover the well-formed space).  That makes the refinement
cheap and exact:

* the atoms of the joint refinement are precisely the non-empty cross
  intersections ``p_i ∧ q_j``;
* each atom is owned by exactly one class on each side, so recording
  ``(i, j)`` per atom recovers every intersecting class pair — and the
  atom BDD *is* that pair's overlap (hash-consing makes it the identical
  node the pairwise loop would have built with ``p_i & q_j``).

:func:`refine_partitions` computes this in two passes that exploit how
near-equivalent configurations actually differ.  Pass 1 resolves every
class that survives unchanged on the other side by a node-identity dict
lookup (hash-consing makes semantic equality node equality), with zero
BDD applies.  Pass 2 takes the handful of genuinely changed classes and
cursor-scans them against only what pass 1 left unconsumed, shrinking
the remainder ``r := r − q_j`` on each hit until ``r`` is empty.  A
nearly-equivalent 10,000-rule ACL pair therefore refines in ~n dict
lookups plus a few dozen BDD operations, instead of the O(n²) pairwise
applies.

Atom counts are bounded by ``atom_budget`` (argument, else the
``CAMPION_ATOM_BUDGET`` environment variable, else
:func:`default_atom_budget`); adversarial partition pairs whose joint
refinement genuinely is quadratic raise :class:`AtomBudgetExceeded` so
the caller can fall back to the pairwise backend instead of materializing
millions of atoms and megabyte-long bitsets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from .engine import Bdd

__all__ = [
    "ATOM_BUDGET_ENV",
    "AtomBudgetExceeded",
    "AtomRefinement",
    "default_atom_budget",
    "iter_set_bits",
    "resolve_atom_budget",
    "refine_partitions",
]

ATOM_BUDGET_ENV = "CAMPION_ATOM_BUDGET"


def iter_set_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, lowest first.

    The canonical walk over an atom bitset: isolating the lowest set
    bit with ``mask & -mask`` keeps each step O(word) on arbitrary-
    precision ints instead of scanning all positions.
    """
    while mask:
        low = mask & -mask
        mask ^= low
        yield low.bit_length() - 1


class AtomBudgetExceeded(RuntimeError):
    """The joint refinement needs more atoms than the caller allowed."""

    def __init__(self, budget: int, count1: int, count2: int) -> None:
        super().__init__(
            f"atom refinement of {count1}x{count2} classes exceeded "
            f"the budget of {budget} atoms"
        )
        self.budget = budget
        self.count1 = count1
        self.count2 = count2


def default_atom_budget(count1: int, count2: int) -> int:
    """Default atom allowance for two partitions of the given sizes.

    Aligned near-equivalent partitions produce about ``max(n1, n2)``
    atoms (one per shared class plus one per genuine difference), so a
    small multiple of ``n1 + n2`` is generous for every legitimate
    workload while still tripping long before an adversarial quadratic
    refinement can materialize ``n1 * n2`` atoms — each of which also
    lengthens every later class bitset.
    """
    return max(2048, 4 * (count1 + count2))


def resolve_atom_budget(
    budget: Optional[int], count1: int, count2: int
) -> int:
    """Resolve the effective atom budget: argument, else the
    ``CAMPION_ATOM_BUDGET`` environment variable, else the default."""
    if budget is not None:
        return budget
    raw = os.environ.get(ATOM_BUDGET_ENV, "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            raise ValueError(
                f"{ATOM_BUDGET_ENV} must be an integer, got {raw!r}"
            ) from None
    return default_atom_budget(count1, count2)


@dataclass
class AtomRefinement:
    """The joint atom refinement of two partitions.

    ``atoms[k]`` is the BDD of atom ``k``; ``owner1[k]``/``owner2[k]``
    index the class on each side whose intersection the atom is.
    ``bitsets1[i]`` (a Python int) has bit ``k`` set iff atom ``k`` lies
    inside partition-1 class ``i`` — so two class predicates intersect
    iff ``bitsets1[i] & bitsets2[j] != 0``, and unions of classes are
    bitwise ORs.

    Atoms cover the *common* region of the two partitions' unions; a
    region covered by only one partition cannot contribute to any cross
    pair, so it gets no atom (``uncovered`` counts the partition-1
    classes whose remainder was dropped that way — 0 whenever both
    partitions cover the same space, the encoder invariant).
    """

    atoms: List[Bdd]
    owner1: List[int]
    owner2: List[int]
    bitsets1: List[int]
    bitsets2: List[int]
    probes: int
    uncovered: int

    @property
    def all_atoms_mask(self) -> int:
        """Bitset with one set bit per atom."""
        return (1 << len(self.atoms)) - 1


def refine_partitions(
    preds1: Sequence[Bdd],
    preds2: Sequence[Bdd],
    atom_budget: Optional[int] = None,
) -> AtomRefinement:
    """Jointly refine two disjoint predicate families into atoms.

    Both inputs must be partitions (pairwise-disjoint predicates); the
    equivalence-class encoders guarantee this.  Disjointness is what
    makes each atom exactly ``p_i ∧ q_j``: subtracting earlier ``q``'s
    from the remainder cannot change its intersection with a later,
    disjoint ``q``.

    Raises :class:`AtomBudgetExceeded` when the refinement would exceed
    the resolved atom budget (see :func:`resolve_atom_budget`).
    """
    count2 = len(preds2)
    budget = resolve_atom_budget(atom_budget, len(preds1), count2)
    atoms: List[Bdd] = []
    owner1: List[int] = []
    owner2: List[int] = []
    bitsets1 = [0] * len(preds1)
    bitsets2 = [0] * count2
    probes = 0
    uncovered = 0
    def emit(atom: Bdd, i: int, j: int) -> None:
        if len(atoms) >= budget:
            raise AtomBudgetExceeded(budget, len(preds1), count2)
        bit = 1 << len(atoms)
        atoms.append(atom)
        owner1.append(i)
        owner2.append(j)
        bitsets1[i] |= bit
        bitsets2[j] |= bit

    # Pass 1 — exact matches by node identity.  Hash-consing makes
    # semantic equality node equality, so a class that survives
    # unchanged on the other side is found by dict lookup: no scanning,
    # no BDD applies.  Disjoint non-empty predicates are never equal,
    # so the index is injective.
    index2 = {}
    for j, other in enumerate(preds2):
        if not other.is_false():
            index2[other.node] = j
    consumed2 = set()
    pending1 = []
    for i, pred in enumerate(preds1):
        if pred.is_false():
            continue
        j = index2.get(pred.node)
        if j is None:
            pending1.append((i, pred))
        else:
            # The whole class is one atom shared verbatim by both sides.
            probes += 1
            emit(pred, i, j)
            consumed2.add(j)

    # Pass 2 — the changed classes scan only what pass 1 left behind.
    # An exactly-matched ``q == p_k`` cannot intersect any other class
    # of a disjoint partition, so dropping it is sound — and it shrinks
    # the scan space to the handful of genuinely changed classes (a
    # changed ACL class typically overlaps its aligned partner *and*
    # the far-away default class; scanning the full list would walk
    # thousands of exact-matched entries to reach it).
    remaining2 = [
        j
        for j in range(count2)
        if j not in consumed2 and not preds2[j].is_false()
    ]
    count_rem = len(remaining2)
    # Probe outward from where the previous class matched: even with no
    # exact matches at all (a fully shifted partition), alignment makes
    # the next partner land near the last one.
    cursor = 0
    for i, pred in pending1:
        remainder = pred
        last_hit = None
        for step in range(count_rem):
            pos = cursor + step
            if pos >= count_rem:
                pos -= count_rem
            j = remaining2[pos]
            other = preds2[j]
            probes += 1
            if remainder.node == other.node:
                atom, remainder = remainder, None
            elif not remainder.intersects(other):
                continue
            else:
                atom = remainder & other
                remainder = remainder - other
            emit(atom, i, j)
            last_hit = pos
            if remainder is None or remainder.is_false():
                remainder = None
                break
        if remainder is not None and not remainder.is_false():
            uncovered += 1
        if last_hit is not None:
            cursor = last_hit + 1
            if cursor >= count_rem:
                cursor = 0
    return AtomRefinement(
        atoms=atoms,
        owner1=owner1,
        owner2=owner2,
        bitsets1=bitsets1,
        bitsets2=bitsets2,
        probes=probes,
        uncovered=uncovered,
    )
