"""Model- and cube-level utilities on top of the ROBDD engine.

The Campion pipeline mostly manipulates whole sets symbolically, but two
places need concrete witnesses:

* the Minesweeper-style baseline reports a single concrete counterexample
  per query (paper §2.1, Tables 3 and 5), and
* Campion itself reports one example community/field value for route-map
  differences outside the exhaustively-localized prefix dimension (§3.2).

This module centralizes witness extraction so those callers share one
deterministic strategy.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .engine import Bdd, BddManager
from .vector import BitVector

__all__ = [
    "complete_model",
    "extract_field_values",
    "cube_count",
    "blocking_clause",
]


def complete_model(
    predicate: Bdd, total_vars: Optional[int] = None
) -> Optional[Dict[int, bool]]:
    """A *total* satisfying assignment of ``predicate``.

    ``any_model`` returns a partial assignment (don't-cares omitted); the
    baseline needs every variable fixed so that a counterexample names one
    concrete packet or route.  Unassigned variables default to False, which
    keeps witnesses minimal and deterministic.
    """
    partial = predicate.any_model()
    if partial is None:
        return None
    if total_vars is None:
        total_vars = predicate.manager.num_vars
    return {index: partial.get(index, False) for index in range(total_vars)}


def extract_field_values(
    model: Dict[int, bool], fields: Sequence[BitVector]
) -> Dict[str, int]:
    """Decode a model into ``{field_name: integer_value}``."""
    return {field.name: field.value_of(model) for field in fields}


def cube_count(predicate: Bdd, limit: Optional[int] = None) -> int:
    """Number of disjoint cubes in ``predicate``'s prime-path cover.

    Stops early at ``limit`` when given — the ablation benchmarks use this
    to show raw cube covers explode where HeaderLocalize stays small.
    """
    count = 0
    for _ in predicate.manager.iter_cubes(predicate):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def blocking_clause(
    manager: BddManager, model: Dict[int, bool], variables: Sequence[int]
) -> Bdd:
    """A predicate excluding exactly ``model`` projected onto ``variables``.

    Used by the iterated-counterexample baseline (§2.1): each successive
    query conjoins the blocking clauses of all previously returned models,
    forcing the solver to exhibit a fresh witness.
    """
    if not variables:
        raise ValueError("blocking clause needs at least one variable")
    cube = manager.true
    for index in variables:
        if index not in model:
            raise KeyError(f"model does not assign variable {index}")
        literal = manager.var(index) if model[index] else manager.nvar(index)
        cube = cube & literal
    return ~cube
