"""Shared atom universe over many partitions (fleet-scale atomization).

:func:`refine_partitions` atomizes exactly two partitions, which is what
one SemanticDiff pairing needs — but a fleet matrix compares every pair
of N devices, so the per-pair backend repays the refinement cost
O(N²) times.  :class:`AtomUniverse` instead folds *all* N partitions
into one joint refinement: the coarsest partition of the space such
that every class of every device is a disjoint union of universe atoms.
Each class then becomes a Python-int bitset over the universe, and every
pairwise question the matrix asks — do two classes intersect?  which
class pairs disagree? — is pure bitwise work with zero BDD applies
(:func:`differing_pair_count` below).

The fold is incremental: the universe starts as the first partition's
classes and each later partition is refined against the current atoms
with the same two-pass :func:`refine_partitions` kernel (node-identity
fast path, cursor scan for the changed handful).  Refining splits old
atoms, so previously folded bitsets are remapped through an
old-atom → new-atoms mask table; nothing is ever recomputed from BDDs.

Soundness notes:

* every folded partition must cover the same space (the equivalence
  class encoders' invariant: classes partition the full input space).
  A fold that leaves part of an old atom uncovered would silently drop
  that region from every earlier bitset, so it raises
  :class:`UniverseCoverageError` instead and the caller falls back to
  per-pair refinement;
* universe atoms are *finer* than one pair's joint refinement (they are
  split by every third party's classes too), so one intersecting class
  pair can own many shared atoms.  Counting differing pairs therefore
  counts distinct ``(class1, class2)`` pairs, never popcounts.

Atom counts are bounded by the same ``CAMPION_ATOM_BUDGET`` contract as
the per-pair refinement: the budget here caps the whole universe, and
an overrun raises :class:`AtomBudgetExceeded` for a per-group fallback.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from .atoms import (
    AtomBudgetExceeded,
    iter_set_bits,
    refine_partitions,
    resolve_atom_budget,
)
from .engine import Bdd

__all__ = [
    "AtomUniverse",
    "UniverseCoverageError",
    "differing_pair_count",
]


class UniverseCoverageError(RuntimeError):
    """A folded partition failed to cover the existing universe.

    Raised when refining a new partition against the current atoms
    leaves part of an old atom uncovered — the partitions do not span
    the same space, so bitset algebra over a shared universe would be
    unsound.  Callers fall back to per-pair refinement.
    """


class AtomUniverse:
    """Joint atom refinement of N partitions, folded incrementally.

    ``add_partition`` returns a partition id; after all folds,
    ``vector(pid)`` is the partition's per-class bitsets over the final
    atoms (bit ``k`` set iff atom ``k`` lies inside the class).  Bitsets
    returned by ``vector`` are only valid for the universe's final
    state — folding further partitions refines earlier vectors in
    place.
    """

    def __init__(self, atom_budget: Optional[int] = None) -> None:
        #: Absolute cap on universe atoms (``None`` resolves per fold
        #: via :func:`resolve_atom_budget`, honouring the environment).
        self.atom_budget = atom_budget
        self.atoms: List[Bdd] = []
        self._vectors: List[List[int]] = []
        #: Total scan probes across every fold (diagnostics).
        self.probes = 0

    @property
    def size(self) -> int:
        """Number of atoms in the universe."""
        return len(self.atoms)

    @property
    def partitions(self) -> int:
        """Number of partitions folded so far."""
        return len(self._vectors)

    @property
    def all_atoms_mask(self) -> int:
        """Bitset with one set bit per atom."""
        return (1 << len(self.atoms)) - 1

    def vector(self, pid: int) -> List[int]:
        """Per-class bitsets of partition ``pid`` over the current atoms."""
        return self._vectors[pid]

    def add_partition(self, preds: Sequence[Bdd]) -> int:
        """Fold one partition into the universe; returns its id.

        ``preds`` must be pairwise disjoint and cover the same space as
        every previously folded partition (false predicates are allowed
        and get empty bitsets).  Raises :class:`AtomBudgetExceeded` on
        budget overrun and :class:`UniverseCoverageError` when coverage
        is violated; the universe must be discarded after either.
        """
        pid = len(self._vectors)
        if not self.atoms:
            budget = resolve_atom_budget(self.atom_budget, len(preds), 0)
            bits: List[int] = []
            for pred in preds:
                if pred.is_false():
                    bits.append(0)
                    continue
                if len(self.atoms) >= budget:
                    raise AtomBudgetExceeded(budget, len(preds), 0)
                bits.append(1 << len(self.atoms))
                self.atoms.append(pred)
            self._vectors.append(bits)
            return pid

        refinement = refine_partitions(
            self.atoms, preds, atom_budget=self.atom_budget
        )
        self.probes += refinement.probes
        if refinement.uncovered:
            raise UniverseCoverageError(
                f"partition {pid} left {refinement.uncovered} universe "
                f"atom(s) uncovered; partitions must span the same space"
            )
        # Refining split old atoms: old atom ``i`` is now the disjoint
        # union of the new atoms that name it as owner1.  Remap every
        # previously folded bitset through that mask table.
        old_to_new = [0] * len(self.atoms)
        for new_index, old_index in enumerate(refinement.owner1):
            old_to_new[old_index] |= 1 << new_index
        for vector in self._vectors:
            for index, bits in enumerate(vector):
                remapped = 0
                for atom in iter_set_bits(bits):
                    remapped |= old_to_new[atom]
                vector[index] = remapped
        self.atoms = list(refinement.atoms)
        self._vectors.append(list(refinement.bitsets2))
        return pid


def differing_pair_count(
    bitsets1: Sequence[int],
    keys1: Sequence[Hashable],
    bitsets2: Sequence[int],
    keys2: Sequence[Hashable],
) -> int:
    """Count intersecting class pairs whose actions differ, bitwise.

    The exact count SemanticDiff would report for this pairing: the
    number of ``(i, j)`` with ``bitsets1[i] & bitsets2[j] != 0`` and
    ``keys1[i] != keys2[j]``.  Runs entirely on Python ints — no BDD
    work — and prunes through the disagreement region first: atoms where
    both sides take the same action cannot belong to a differing pair
    (each atom has exactly one owner per side), so masking them out
    empties almost every bitset on near-equivalent partitions.
    """
    unions1: dict = {}
    for key, bits in zip(keys1, bitsets1):
        if bits:
            unions1[key] = unions1.get(key, 0) | bits
    agree = 0
    for key, bits in zip(keys2, bitsets2):
        if bits:
            other = unions1.get(key)
            if other:
                agree |= other & bits
    candidates2 = []
    for key, bits in zip(keys2, bitsets2):
        masked = bits & ~agree
        if masked:
            candidates2.append((key, masked))
    if not candidates2:
        return 0
    count = 0
    for key1, bits in zip(keys1, bitsets1):
        masked1 = bits & ~agree
        if not masked1:
            continue
        for key2, masked2 in candidates2:
            if key1 != key2 and masked1 & masked2:
                count += 1
    return count
