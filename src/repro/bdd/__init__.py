"""From-scratch ROBDD engine (JavaBDD substitute) and bit-vector helpers."""

from .atoms import (
    ATOM_BUDGET_ENV,
    AtomBudgetExceeded,
    AtomRefinement,
    default_atom_budget,
    refine_partitions,
)
from .engine import AnalysisBudgetExceeded, Bdd, BddManager
from .sat import blocking_clause, complete_model, cube_count, extract_field_values
from .store import BDD_STORE_ENV, DictNodeStore, FlatNodeStore, resolve_store
from .vector import BitVector

__all__ = [
    "ATOM_BUDGET_ENV",
    "BDD_STORE_ENV",
    "AnalysisBudgetExceeded",
    "AtomBudgetExceeded",
    "AtomRefinement",
    "Bdd",
    "BddManager",
    "BitVector",
    "DictNodeStore",
    "FlatNodeStore",
    "blocking_clause",
    "complete_model",
    "cube_count",
    "default_atom_budget",
    "extract_field_values",
    "refine_partitions",
    "resolve_store",
]
