"""From-scratch ROBDD engine (JavaBDD substitute) and bit-vector helpers."""

from .engine import AnalysisBudgetExceeded, Bdd, BddManager
from .sat import blocking_clause, complete_model, cube_count, extract_field_values
from .vector import BitVector

__all__ = [
    "AnalysisBudgetExceeded",
    "Bdd",
    "BddManager",
    "BitVector",
    "blocking_clause",
    "complete_model",
    "cube_count",
    "extract_field_values",
]
