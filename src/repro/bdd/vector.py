"""Bit-vector predicates over BDD variables.

Campion encodes packet and route-advertisement fields (IP addresses, prefix
lengths, ports, local preference, ...) as fixed-width unsigned integers.
:class:`BitVector` binds a field to a block of BDD variables (most
significant bit first) and builds the predicates the encoders need:

* ``eq_const`` / ``neq_const`` — equality with a constant,
* ``interval`` — membership in a closed integer interval,
* ``prefix_match`` — the high ``k`` bits equal those of a constant (used
  for IP prefix matching),
* ``eq`` — bitwise equality of two vectors (used by the monolithic
  baseline to equate the "input" and "output" copies of a field).

All constructions are linear in the bit width, producing the interval and
prefix predicates directly rather than by enumerating values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .engine import Bdd, BddManager

__all__ = ["BitVector"]


class BitVector:
    """A fixed-width unsigned integer field laid out over BDD variables."""

    def __init__(self, manager: BddManager, name: str, variables: Sequence[Bdd]):
        if not variables:
            raise ValueError(f"bit vector {name!r} needs at least one variable")
        self.manager = manager
        self.name = name
        # variables[0] is the most significant bit.
        self.variables: List[Bdd] = list(variables)
        self.var_indices: List[int] = [v.support()[0] for v in variables]

    @classmethod
    def allocate(cls, manager: BddManager, name: str, width: int) -> "BitVector":
        """Allocate ``width`` fresh variables (MSB first) for this field."""
        if width <= 0:
            raise ValueError(f"bit vector {name!r} needs positive width, got {width}")
        return cls(manager, name, manager.new_vars(width))

    @property
    def width(self) -> int:
        """Bit width of the field."""
        return len(self.variables)

    @property
    def max_value(self) -> int:
        """Largest representable value (2^width - 1)."""
        return (1 << self.width) - 1

    def _check_value(self, value: int) -> None:
        if not 0 <= value <= self.max_value:
            raise ValueError(
                f"value {value} out of range for {self.width}-bit field {self.name!r}"
            )

    # -- constant predicates -------------------------------------------------
    def bit(self, position: int) -> Bdd:
        """The literal for bit ``position`` (0 = most significant)."""
        return self.variables[position]

    def eq_const(self, value: int) -> Bdd:
        """Predicate: the field equals ``value``."""
        self._check_value(value)
        return self.manager.cube(
            {
                self.var_indices[position]: bool(
                    (value >> (self.width - 1 - position)) & 1
                )
                for position in range(self.width)
            }
        )

    def neq_const(self, value: int) -> Bdd:
        """Predicate: the field differs from ``value``."""
        return ~self.eq_const(value)

    def prefix_match(self, value: int, bits: int) -> Bdd:
        """Predicate: the top ``bits`` bits of the field equal those of ``value``.

        ``bits == 0`` matches everything.  This is the primitive behind IP
        prefix matching: ``prefix_match(ip_of("10.9.0.0"), 16)``.
        """
        if not 0 <= bits <= self.width:
            raise ValueError(
                f"prefix width {bits} out of range for {self.width}-bit field"
            )
        self._check_value(value)
        return self.manager.cube(
            {
                self.var_indices[position]: bool(
                    (value >> (self.width - 1 - position)) & 1
                )
                for position in range(bits)
            }
        )

    # -- interval predicates ---------------------------------------------------
    def le_const(self, bound: int) -> Bdd:
        """Predicate: field <= bound."""
        self._check_value(bound)
        if self.manager.fast_kernels:
            return self.manager.threshold(self.var_indices, bound, at_least=False)
        # Walk MSB->LSB.  At each 1-bit of the bound, taking 0 there makes
        # the rest unconstrained; at each 0-bit we are forced to take 0.
        acc = self.manager.true  # equality path so far satisfied
        result = self.manager.false
        for position in range(self.width):
            bit_set = (bound >> (self.width - 1 - position)) & 1
            var = self.variables[position]
            if bit_set:
                result = result | (acc & ~var)
                acc = acc & var
            else:
                acc = acc & ~var
        return result | acc  # acc now encodes exact equality with bound

    def ge_const(self, bound: int) -> Bdd:
        """Predicate: field >= bound."""
        self._check_value(bound)
        if self.manager.fast_kernels:
            return self.manager.threshold(self.var_indices, bound, at_least=True)
        acc = self.manager.true
        result = self.manager.false
        for position in range(self.width):
            bit_set = (bound >> (self.width - 1 - position)) & 1
            var = self.variables[position]
            if bit_set:
                acc = acc & var
            else:
                result = result | (acc & var)
                acc = acc & ~var
        return result | acc

    def interval(self, low: int, high: int) -> Bdd:
        """Predicate: ``low <= field <= high`` (inclusive on both ends)."""
        if low > high:
            raise ValueError(f"empty interval [{low}, {high}] for field {self.name!r}")
        return self.ge_const(low) & self.le_const(high)

    # -- vector/vector predicates ------------------------------------------------
    def eq(self, other: "BitVector") -> Bdd:
        """Predicate: this field equals ``other`` bit for bit."""
        if other.width != self.width:
            raise ValueError(
                f"width mismatch: {self.name!r} is {self.width} bits, "
                f"{other.name!r} is {other.width}"
            )
        acc = self.manager.true
        for position in range(self.width - 1, -1, -1):
            a, b = self.variables[position], other.variables[position]
            acc = ~(a ^ b) & acc
        return acc

    # -- model extraction ------------------------------------------------------
    def value_of(self, model: Dict[int, bool], default_bit: bool = False) -> int:
        """Read this field's integer value out of a (partial) model.

        Variables absent from the model (don't-cares) take ``default_bit``.
        """
        value = 0
        for position in range(self.width):
            bit = model.get(self.var_indices[position], default_bit)
            value = (value << 1) | int(bit)
        return value

    def free_bits(self, model: Dict[int, bool]) -> List[int]:
        """Positions (0 = MSB) whose variables are unassigned in ``model``."""
        return [
            position
            for position in range(self.width)
            if self.var_indices[position] not in model
        ]
