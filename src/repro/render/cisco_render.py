"""Render a DeviceConfig as Cisco IOS text.

The output targets exactly the IOS subset ``repro.parsers.cisco``
consumes, so parse→render→parse round-trips (property-tested).  The
renderer is semantics-preserving: structural details that IOS leaves
implicit (the route-map's trailing deny) are emitted only when the
model deviates from the implicit default.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..model import (
    Acl,
    AclAction,
    AclLine,
    Action,
    AsPathList,
    BgpProcess,
    CommunityList,
    DEFAULT_ADMIN_DISTANCES,
    DeviceConfig,
    Interface,
    IpWildcard,
    MatchAsPath,
    MatchCommunities,
    MatchPrefixList,
    MatchProtocol,
    MatchTag,
    OspfProcess,
    PortRange,
    PrefixList,
    RouteMap,
    SetAsPathPrepend,
    SetCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetTag,
    int_to_ip,
)
from ..model.acl import IP_PROTOCOL_NAMES
from .errors import RenderError

__all__ = ["render_cisco_device"]


def _mask(length: int) -> str:
    value = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    return int_to_ip(value)


def _wildcard_of(length: int) -> str:
    value = 0xFFFFFFFF if length == 0 else (~((0xFFFFFFFF << (32 - length)))) & 0xFFFFFFFF
    return int_to_ip(value)


def _render_interfaces(device: DeviceConfig, lines: List[str]) -> None:
    for name in sorted(device.interfaces):
        interface = device.interfaces[name]
        lines.append(f"interface {name}")
        if interface.description:
            lines.append(f" description {interface.description}")
        if interface.address is not None:
            lines.append(
                f" ip address {int_to_ip(interface.address.network)} "
                f"{_mask(interface.address.length)}"
            )
        if interface.acl_in:
            lines.append(f" ip access-group {interface.acl_in} in")
        if interface.acl_out:
            lines.append(f" ip access-group {interface.acl_out} out")
        settings = (
            device.ospf.interface_map().get(name) if device.ospf is not None else None
        )
        if settings is not None:
            if settings.cost is not None:
                lines.append(f" ip ospf cost {settings.cost}")
            if settings.hello_interval != 10:
                lines.append(f" ip ospf hello-interval {settings.hello_interval}")
            if settings.dead_interval != 40:
                lines.append(f" ip ospf dead-interval {settings.dead_interval}")
            if settings.network_type != "broadcast":
                lines.append(f" ip ospf network {settings.network_type}")
        if interface.shutdown:
            lines.append(" shutdown")
        lines.append("!")


def _render_prefix_lists(device: DeviceConfig, lines: List[str]) -> None:
    for name in sorted(device.prefix_lists):
        for entry in device.prefix_lists[name].entries:
            parts = [f"ip prefix-list {name} {entry.action.value} {entry.range.prefix}"]
            plen = entry.range.prefix.length
            low, high = entry.range.low, entry.range.high
            if low == plen and high == plen:
                pass  # exact match: no modifiers
            elif low == plen:
                parts.append(f"le {high}")
            elif high == 32:
                parts.append(f"ge {low}")
            else:
                parts.append(f"ge {low} le {high}")
            lines.append(" ".join(parts))
        lines.append("!")


def _render_community_lists(device: DeviceConfig, lines: List[str]) -> None:
    for name in sorted(device.community_lists):
        for entry in device.community_lists[name].entries:
            if entry.regex is not None:
                lines.append(
                    f"ip community-list expanded {name} {entry.action.value} {entry.regex}"
                )
            else:
                members = " ".join(str(c) for c in sorted(entry.communities))
                lines.append(
                    f"ip community-list standard {name} {entry.action.value} {members}"
                )
        lines.append("!")


def _render_as_path_lists(device: DeviceConfig, lines: List[str]) -> None:
    for name in sorted(device.as_path_lists):
        for entry in device.as_path_lists[name].entries:
            lines.append(
                f"ip as-path access-list {name} {entry.action.value} {entry.regex}"
            )
        lines.append("!")


def _render_acl_address(wildcard: IpWildcard) -> str:
    if wildcard.is_any():
        return "any"
    if wildcard.wildcard == 0:
        return f"host {int_to_ip(wildcard.address)}"
    return f"{int_to_ip(wildcard.address)} {int_to_ip(wildcard.wildcard)}"


def _render_ports(ports: Tuple[PortRange, ...]) -> str:
    if not ports:
        return ""
    if len(ports) > 1:
        raise RenderError("IOS expresses one port operator per rule")
    port_range = ports[0]
    if port_range.low == port_range.high:
        return f" eq {port_range.low}"
    if port_range.low == 0:
        return f" lt {port_range.high + 1}"
    if port_range.high == 0xFFFF:
        return f" gt {port_range.low - 1}"
    return f" range {port_range.low} {port_range.high}"


def _render_acls(device: DeviceConfig, lines: List[str]) -> None:
    for name in sorted(device.acls):
        acl = device.acls[name]
        if acl.default_action is not AclAction.DENY:
            raise RenderError("IOS ACLs end in an implicit deny; permit default unsupported")
        lines.append(f"ip access-list extended {name}")
        for rule in acl.lines:
            protocol = (
                IP_PROTOCOL_NAMES.get(rule.protocol, str(rule.protocol))
                if rule.protocol is not None
                else "ip"
            )
            text = (
                f" {rule.action.value} {protocol}"
                f" {_render_acl_address(rule.src)}{_render_ports(rule.src_ports)}"
                f" {_render_acl_address(rule.dst)}{_render_ports(rule.dst_ports)}"
            )
            if rule.icmp_type is not None:
                text += f" {rule.icmp_type}"
            lines.append(text)
        lines.append("!")


def _render_match(condition) -> str:
    if isinstance(condition, MatchPrefixList):
        return f" match ip address prefix-list {condition.prefix_list.name}"
    if isinstance(condition, MatchCommunities):
        return f" match community {condition.community_list.name}"
    if isinstance(condition, MatchAsPath):
        return f" match as-path {condition.as_path_list.name}"
    if isinstance(condition, MatchTag):
        return f" match tag {condition.tag}"
    if isinstance(condition, MatchProtocol):
        raise RenderError("IOS route-maps cannot match a source protocol directly")
    raise RenderError(f"unsupported match condition {condition!r}")


def _render_set(action) -> str:
    if isinstance(action, SetLocalPref):
        return f" set local-preference {action.value}"
    if isinstance(action, SetMed):
        return f" set metric {action.value}"
    if isinstance(action, SetCommunities):
        members = " ".join(str(c) for c in sorted(action.communities))
        suffix = " additive" if action.additive else ""
        return f" set community {members}{suffix}"
    if isinstance(action, SetNextHop):
        return f" set ip next-hop {int_to_ip(action.ip)}"
    if isinstance(action, SetAsPathPrepend):
        return " set as-path prepend " + " ".join(str(a) for a in action.asns)
    if isinstance(action, SetTag):
        return f" set tag {action.tag}"
    raise RenderError(f"unsupported set action {action!r}")


def _render_route_maps(device: DeviceConfig, lines: List[str]) -> None:
    for name in sorted(device.route_maps):
        route_map = device.route_maps[name]
        sequence = 10
        for clause in route_map.clauses:
            lines.append(f"route-map {name} {clause.action.value} {sequence}")
            for condition in clause.matches:
                # Route maps referencing prefix lists by their list name;
                # synthetic route-filter lists need materializing first.
                lines.append(_render_match(condition))
            for action in clause.sets:
                lines.append(_render_set(action))
            sequence += 10
        if route_map.default_action is Action.PERMIT:
            # IOS's implicit default is deny; make a permit explicit.
            lines.append(f"route-map {name} permit {sequence}")
        lines.append("!")


def _materialize_synthetic_lists(device: DeviceConfig) -> DeviceConfig:
    """Hoist route-filter-style synthetic prefix lists (created by the
    JunOS parser) into named prefix lists so IOS can reference them."""
    import copy
    import re

    device = copy.copy(device)
    device.prefix_lists = dict(device.prefix_lists)
    device.route_maps = dict(device.route_maps)
    counter = 0
    for map_name, route_map in list(device.route_maps.items()):
        new_clauses = []
        changed = False
        for clause in route_map.clauses:
            new_matches = []
            for condition in clause.matches:
                if (
                    isinstance(condition, MatchPrefixList)
                    and (
                        condition.prefix_list.name not in device.prefix_lists
                        or not re.match(r"^[A-Za-z0-9_.:-]+$", condition.prefix_list.name)
                    )
                ):
                    counter += 1
                    fresh = f"PL-{map_name}-{counter}"
                    device.prefix_lists[fresh] = PrefixList(
                        fresh, condition.prefix_list.entries
                    )
                    new_matches.append(
                        MatchPrefixList(device.prefix_lists[fresh], condition.source)
                    )
                    changed = True
                else:
                    new_matches.append(condition)
            new_clauses.append(
                type(clause)(
                    name=clause.name,
                    action=clause.action,
                    matches=tuple(new_matches),
                    sets=clause.sets,
                    source=clause.source,
                )
            )
        if changed:
            device.route_maps[map_name] = RouteMap(
                name=route_map.name,
                clauses=tuple(new_clauses),
                default_action=route_map.default_action,
                source=route_map.source,
            )
    return device


def _render_static_routes(device: DeviceConfig, lines: List[str]) -> None:
    for route in sorted(device.static_routes):
        target = (
            int_to_ip(route.next_hop)
            if route.next_hop is not None
            else ("Null0" if route.interface == "discard" else route.interface or "Null0")
        )
        parts = [
            f"ip route {int_to_ip(route.prefix.network)} {_mask(route.prefix.length)} {target}"
        ]
        if route.admin_distance != 1:
            parts.append(str(route.admin_distance))
        if route.tag is not None:
            parts.append(f"tag {route.tag}")
        lines.append(" ".join(parts))
    if device.static_routes:
        lines.append("!")


def _render_bgp(device: DeviceConfig, lines: List[str], warnings: List[str]) -> None:
    bgp = device.bgp
    if bgp is None:
        return
    lines.append(f"router bgp {bgp.asn}")
    if bgp.router_id is not None:
        lines.append(f" bgp router-id {int_to_ip(bgp.router_id)}")
    if bgp.default_local_pref != 100:
        lines.append(f" bgp default local-preference {bgp.default_local_pref}")
    for neighbor in bgp.neighbors:
        peer = int_to_ip(neighbor.peer_ip)
        lines.append(f" neighbor {peer} remote-as {neighbor.remote_as}")
        if neighbor.description:
            lines.append(f" neighbor {peer} description {neighbor.description}")
        if neighbor.import_policy:
            lines.append(f" neighbor {peer} route-map {neighbor.import_policy} in")
        if neighbor.export_policy:
            lines.append(f" neighbor {peer} route-map {neighbor.export_policy} out")
        if neighbor.route_reflector_client:
            lines.append(f" neighbor {peer} route-reflector-client")
        if neighbor.send_community:
            lines.append(f" neighbor {peer} send-community")
        if neighbor.next_hop_self:
            lines.append(f" neighbor {peer} next-hop-self")
        if neighbor.update_source:
            lines.append(f" neighbor {peer} update-source {neighbor.update_source}")
        if neighbor.ebgp_multihop:
            lines.append(f" neighbor {peer} ebgp-multihop")
    for redistribution in bgp.redistributions:
        parts = [f" redistribute {redistribution.from_protocol}"]
        if redistribution.route_map:
            parts.append(f"route-map {redistribution.route_map}")
        if redistribution.metric is not None:
            parts.append(f"metric {redistribution.metric}")
        lines.append(" ".join(parts))
    ebgp = device.admin_distances.get("ebgp", DEFAULT_ADMIN_DISTANCES["ebgp"])
    ibgp = device.admin_distances.get("ibgp", DEFAULT_ADMIN_DISTANCES["ibgp"])
    if (ebgp, ibgp) != (
        DEFAULT_ADMIN_DISTANCES["ebgp"],
        DEFAULT_ADMIN_DISTANCES["ibgp"],
    ):
        lines.append(f" distance bgp {ebgp} {ibgp} {ibgp}")
    lines.append("!")


def _render_ospf(device: DeviceConfig, lines: List[str], warnings: List[str]) -> None:
    ospf = device.ospf
    if ospf is None:
        return
    lines.append(f"router ospf {ospf.process_id}")
    if ospf.router_id is not None:
        lines.append(f" router-id {int_to_ip(ospf.router_id)}")
    for settings in ospf.interfaces:
        interface = device.interfaces.get(settings.interface)
        if interface is None or interface.subnet() is None:
            warnings.append(
                f"ospf interface {settings.interface} has no subnet; "
                "cannot emit a network statement"
            )
            continue
        subnet = interface.subnet()
        lines.append(
            f" network {int_to_ip(subnet.network)} {_wildcard_of(subnet.length)} "
            f"area {settings.area}"
        )
        if settings.passive:
            lines.append(f" passive-interface {settings.interface}")
    for redistribution in ospf.redistributions:
        parts = [f" redistribute {redistribution.from_protocol} subnets"]
        if redistribution.route_map:
            parts.append(f"route-map {redistribution.route_map}")
        if redistribution.metric is not None:
            parts.append(f"metric {redistribution.metric}")
        if redistribution.metric_type != 2:
            parts.append(f"metric-type {redistribution.metric_type}")
        lines.append(" ".join(parts))
    if ospf.reference_bandwidth != 100_000_000:
        lines.append(
            f" auto-cost reference-bandwidth {ospf.reference_bandwidth // 1_000_000}"
        )
    distance = device.admin_distances.get("ospf", DEFAULT_ADMIN_DISTANCES["ospf"])
    if distance != DEFAULT_ADMIN_DISTANCES["ospf"]:
        lines.append(f" distance {distance}")
    lines.append("!")


def render_cisco_device(device: DeviceConfig) -> Tuple[str, List[str]]:
    """Render ``device`` as IOS text.  Returns (text, warnings)."""
    warnings: List[str] = []
    device = _materialize_synthetic_lists(device)
    lines: List[str] = [f"hostname {device.hostname}", "!"]
    _render_interfaces(device, lines)
    _render_prefix_lists(device, lines)
    _render_community_lists(device, lines)
    _render_as_path_lists(device, lines)
    _render_acls(device, lines)
    _render_route_maps(device, lines)
    _render_static_routes(device, lines)
    _render_bgp(device, lines, warnings)
    _render_ospf(device, lines, warnings)
    return "\n".join(lines) + "\n", warnings
