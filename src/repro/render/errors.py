"""Renderer errors."""

__all__ = ["RenderError"]


class RenderError(ValueError):
    """The model uses a construct the target dialect cannot express
    (e.g. a discontiguous wildcard in JunOS, or a deny entry inside a
    prefix list being expanded into JunOS terms)."""
