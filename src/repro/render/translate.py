"""Assisted cross-vendor translation with built-in verification.

The §5.1 Scenario 2 workflow, automated: parse the source
configuration, render it in the target dialect, re-parse the rendering,
and run Campion on (source, translation).  The returned
:class:`TranslationResult` carries the text, the renderer's
expressibility warnings, and the verification report — a translation is
only trustworthy when ``result.verified`` holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.config_diff import config_diff
from ..core.results import CampionReport
from ..model.device import DeviceConfig
from ..parsers import parse_cisco, parse_juniper
from .cisco_render import render_cisco_device
from .errors import RenderError
from .juniper_render import render_juniper_device

__all__ = ["TranslationResult", "translate"]


@dataclass
class TranslationResult:
    """A rendered translation plus its Campion verification."""

    source: DeviceConfig
    target_dialect: str
    text: str
    translated: DeviceConfig
    warnings: List[str] = field(default_factory=list)
    report: Optional[CampionReport] = None

    @property
    def verified(self) -> bool:
        """True when Campion found no difference between source and
        translation (Theorem 3.3: behavior is then guaranteed equal)."""
        return self.report is not None and self.report.is_equivalent()


def translate(device: DeviceConfig, target_dialect: str, verify: bool = True) -> TranslationResult:
    """Render ``device`` in ``target_dialect`` and verify the result."""
    if target_dialect == "cisco":
        text, warnings = render_cisco_device(device)
        translated = parse_cisco(text, f"{device.hostname}-translated.cfg")
    elif target_dialect == "juniper":
        text, warnings = render_juniper_device(device)
        translated = parse_juniper(text, f"{device.hostname}-translated.cfg")
    else:
        raise RenderError(f"unknown target dialect {target_dialect!r}")

    result = TranslationResult(
        source=device,
        target_dialect=target_dialect,
        text=text,
        translated=translated,
        warnings=warnings,
    )
    if verify:
        result.report = config_diff(device, translated)
    return result
