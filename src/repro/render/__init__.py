"""Configuration renderers ("unparsers", §4).

Turn the vendor-independent model back into Cisco IOS or Juniper JunOS
text.  Two uses:

* **round-trip validation** — parse → render → parse must be
  behaviorally equivalent (property-tested via ConfigDiff), which
  pins down parser/model/renderer semantics against each other;
* **assisted translation** — render a parsed Cisco config as JunOS (or
  vice versa) to bootstrap a router replacement, then verify the result
  with Campion exactly as §5.1 Scenario 2 prescribes.
"""

from .cisco_render import render_cisco_device
from .errors import RenderError
from .juniper_render import render_juniper_device
from .translate import translate

__all__ = [
    "RenderError",
    "render_cisco_device",
    "render_juniper_device",
    "translate",
]
