"""Render a DeviceConfig as Juniper JunOS text.

Cross-vendor semantics are preserved by *expansion* where JunOS's
primitives differ from the model's:

* a prefix list whose entries are permit-only renders as ``route-filter``
  conditions ORed inside one ``from`` block (exactly our parser's merged
  semantics); deny entries cannot be expanded linearly and raise
  :class:`~repro.render.errors.RenderError`;
* a community list with several disjunctive entries expands into one
  JunOS term per entry, each carrying the same ``then`` block —
  first-match over the copies equals Cisco's any-of semantics;
* the model's explicit fall-through action becomes an explicit final
  catch-all term, so IOS's implicit deny survives translation (the §5.2
  fall-through bug class is about forgetting precisely this).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..model import (
    Acl,
    AclAction,
    AclLine,
    Action,
    CommunityList,
    CommunityListEntry,
    DEFAULT_ADMIN_DISTANCES,
    DeviceConfig,
    MatchAsPath,
    MatchCommunities,
    MatchCondition,
    MatchPrefixList,
    MatchProtocol,
    MatchTag,
    PrefixList,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetTag,
    int_to_ip,
)
from ..model.acl import IP_PROTOCOL_NAMES
from .errors import RenderError

__all__ = ["render_juniper_device"]

_INDENT = "    "


class _Block:
    """Tiny indented-block writer for the curly-brace format."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def open(self, header: str) -> None:
        self.lines.append(f"{_INDENT * self.depth}{header} {{")
        self.depth += 1

    def close(self) -> None:
        self.depth -= 1
        self.lines.append(f"{_INDENT * self.depth}}}")

    def stmt(self, text: str) -> None:
        self.lines.append(f"{_INDENT * self.depth}{text};")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _route_filter(entry_range) -> str:
    prefix = entry_range.prefix
    low, high = entry_range.low, entry_range.high
    if low == prefix.length and high == prefix.length:
        return f"route-filter {prefix} exact"
    if low == prefix.length and high == 32:
        return f"route-filter {prefix} orlonger"
    if low == prefix.length:
        return f"route-filter {prefix} upto /{high}"
    return f"route-filter {prefix} prefix-length-range /{low}-/{high}"


def _community_name(base: str, index: int, total: int) -> str:
    return base if total == 1 else f"{base}-{index}"


def _plan_communities(device: DeviceConfig) -> Tuple[dict, dict, dict]:
    """Assign JunOS community names: one per disjunctive entry, plus
    synthesized definitions for ``set community`` values that no named
    list covers.

    Returns (definitions, expansion, set_names): ``definitions`` maps a
    JunOS name to its entry, ``expansion`` maps a model list name to the
    ordered JunOS names of its entries, and ``set_names`` maps a
    frozenset of communities (a SetCommunities payload) to the JunOS
    name to reference in ``community set/add``.
    """
    from ..model import CommunityListEntry as _Entry

    definitions: dict = {}
    expansion: dict = {}
    for name in sorted(device.community_lists):
        community_list = device.community_lists[name]
        for entry in community_list.entries:
            if entry.action is not Action.PERMIT:
                raise RenderError(
                    f"community list {name} has deny entries; JunOS term "
                    "expansion cannot express them"
                )
        names = []
        for index, entry in enumerate(community_list.entries):
            junos_name = _community_name(name, index, len(community_list.entries))
            definitions[junos_name] = entry
            names.append(junos_name)
        expansion[name] = names

    set_names: dict = {}
    synthetic = 0
    for map_name in sorted(device.route_maps):
        for clause in device.route_maps[map_name].clauses:
            for action in clause.sets:
                if not isinstance(action, SetCommunities):
                    continue
                if action.communities in set_names:
                    continue
                existing = _set_community_name(device, action)
                if existing is not None:
                    # A single-entry literal definition already covers it.
                    set_names[action.communities] = existing
                    continue
                synthetic += 1
                junos_name = f"SETCOMM-{synthetic}"
                set_names[action.communities] = junos_name
                definitions[junos_name] = _Entry(
                    action=Action.PERMIT, communities=action.communities
                )
    return definitions, expansion, set_names


def _render_policy_options(
    device: DeviceConfig, block: _Block, warnings: List[str]
) -> None:
    definitions, community_expansion, set_names = _plan_communities(device)
    if not (
        device.prefix_lists
        or definitions
        or device.as_path_lists
        or device.route_maps
    ):
        return
    block.open("policy-options")
    # Prefix lists with exact-only semantics can render natively; all
    # others are inlined as route-filters at use sites.
    for junos_name in sorted(definitions):
        entry = definitions[junos_name]
        if entry.regex is not None:
            block.stmt(f'community {junos_name} members "{entry.regex}"')
        else:
            members = " ".join(str(c) for c in sorted(entry.communities))
            block.stmt(f"community {junos_name} members [ {members} ]")
    for name in sorted(device.as_path_lists):
        as_path_list = device.as_path_lists[name]
        for entry in as_path_list.entries:
            if entry.action is not Action.PERMIT:
                raise RenderError(
                    f"as-path list {name} has deny entries; unsupported in JunOS rendering"
                )
        if len(as_path_list.entries) == 1:
            block.stmt(f'as-path {name} "{as_path_list.entries[0].regex}"')
        else:
            for index, entry in enumerate(as_path_list.entries):
                block.stmt(f'as-path {name}-{index} "{entry.regex}"')
    for name in sorted(device.route_maps):
        _render_policy_statement(
            device,
            device.route_maps[name],
            block,
            community_expansion,
            set_names,
            warnings,
        )
    block.close()


def _clause_variants(
    clause: RouteMapClause, community_expansion: dict
) -> List[List[MatchCondition]]:
    """Expand disjunctive community/as-path lists into per-term variants."""
    dimensions: List[List[object]] = []
    for condition in clause.matches:
        if isinstance(condition, MatchCommunities):
            names = community_expansion[condition.community_list.name]
            dimensions.append([("community", name) for name in names])
        elif isinstance(condition, MatchAsPath):
            entries = condition.as_path_list.entries
            if len(entries) == 1:
                dimensions.append([("as-path", condition.as_path_list.name)])
            else:
                dimensions.append(
                    [
                        ("as-path", f"{condition.as_path_list.name}-{index}")
                        for index in range(len(entries))
                    ]
                )
        else:
            dimensions.append([condition])
    if not dimensions:
        return [[]]
    return [list(combo) for combo in itertools.product(*dimensions)]


def _render_policy_statement(
    device: DeviceConfig,
    route_map: RouteMap,
    block: _Block,
    community_expansion: dict,
    set_names: dict,
    warnings: List[str],
) -> None:
    block.open(f"policy-statement {route_map.name}")
    term_index = 0
    for clause in route_map.clauses:
        for variant in _clause_variants(clause, community_expansion):
            term_index += 1
            block.open(f"term t{term_index}")
            conditions: List[str] = []
            for condition in variant:
                if isinstance(condition, tuple):
                    kind, name = condition
                    conditions.append(f"{kind} {name}")
                elif isinstance(condition, MatchPrefixList):
                    for entry in condition.prefix_list.entries:
                        if entry.action is not Action.PERMIT:
                            raise RenderError(
                                f"prefix list {condition.prefix_list.name} has deny "
                                "entries; JunOS route-filter expansion unsupported"
                            )
                        conditions.append(_route_filter(entry.range))
                elif isinstance(condition, MatchTag):
                    conditions.append(f"tag {condition.tag}")
                elif isinstance(condition, MatchProtocol):
                    conditions.append(f"protocol {condition.protocol}")
                else:
                    raise RenderError(f"unsupported match condition {condition!r}")
            if conditions:
                block.open("from")
                for text in conditions:
                    block.stmt(text)
                block.close()
            block.open("then")
            _render_then(device, clause, block, set_names, warnings)
            block.close()
            block.close()
    # Explicit catch-all carrying the model's fall-through action.
    term_index += 1
    block.open(f"term t{term_index}")
    block.open("then")
    block.stmt("accept" if route_map.default_action is Action.PERMIT else "reject")
    block.close()
    block.close()
    block.close()


def _render_then(
    device: DeviceConfig,
    clause: RouteMapClause,
    block: _Block,
    set_names: dict,
    warnings: List[str],
) -> None:
    for action in clause.sets:
        if isinstance(action, SetLocalPref):
            block.stmt(f"local-preference {action.value}")
        elif isinstance(action, SetMed):
            block.stmt(f"metric {action.value}")
        elif isinstance(action, SetCommunities):
            # ``community set/add`` references a named definition; the
            # planner pre-registered one for every SetCommunities payload.
            name = set_names[action.communities]
            block.stmt(f"community {'add' if action.additive else 'set'} {name}")
        elif isinstance(action, SetNextHop):
            block.stmt(f"next-hop {int_to_ip(action.ip)}")
        elif isinstance(action, SetAsPathPrepend):
            block.stmt(
                "as-path-prepend " + " ".join(str(a) for a in action.asns)
            )
        elif isinstance(action, SetTag):
            block.stmt(f"tag {action.tag}")
        else:
            raise RenderError(f"unsupported set action {action!r}")
    block.stmt("accept" if clause.action is Action.PERMIT else "reject")


def _set_community_name(device: DeviceConfig, action: SetCommunities) -> Optional[str]:
    for name in sorted(device.community_lists):
        entries = device.community_lists[name].entries
        if (
            len(entries) == 1
            and entries[0].regex is None
            and entries[0].communities == action.communities
        ):
            return name
    return None


def _render_interfaces(device: DeviceConfig, block: _Block) -> None:
    if not device.interfaces:
        return
    block.open("interfaces")
    for name in sorted(device.interfaces):
        interface = device.interfaces[name]
        physical, _, unit = name.partition(".")
        block.open(physical)
        if interface.description:
            block.stmt(f'description "{interface.description}"')
        if interface.shutdown:
            block.stmt("disable")
        block.open(f"unit {unit or '0'}")
        block.open("family inet")
        if interface.address is not None:
            block.stmt(
                f"address {int_to_ip(interface.address.network)}/{interface.address.length}"
            )
        if interface.acl_in or interface.acl_out:
            block.open("filter")
            if interface.acl_in:
                block.stmt(f"input {interface.acl_in}")
            if interface.acl_out:
                block.stmt(f"output {interface.acl_out}")
            block.close()
        block.close()
        block.close()
        block.close()
    block.close()


def _render_routing_options(device: DeviceConfig, block: _Block) -> None:
    has_asn = device.bgp is not None
    has_rid = (device.bgp and device.bgp.router_id) or (
        device.ospf and device.ospf.router_id
    )
    if not (device.static_routes or has_asn or has_rid):
        return
    block.open("routing-options")
    if device.static_routes:
        block.open("static")
        for route in sorted(device.static_routes):
            block.open(f"route {route.prefix}")
            if route.next_hop is not None:
                block.stmt(f"next-hop {int_to_ip(route.next_hop)}")
            elif route.interface == "discard":
                block.stmt("discard")
            elif route.interface:
                block.stmt(f"next-hop {route.interface}")
            block.stmt(f"preference {route.admin_distance}")
            if route.tag is not None:
                block.stmt(f"tag {route.tag}")
            block.close()
        block.close()
    router_id = None
    if device.bgp is not None and device.bgp.router_id is not None:
        router_id = device.bgp.router_id
    elif device.ospf is not None and device.ospf.router_id is not None:
        router_id = device.ospf.router_id
    if router_id is not None:
        block.stmt(f"router-id {int_to_ip(router_id)}")
    if device.bgp is not None:
        block.stmt(f"autonomous-system {device.bgp.asn}")
    block.close()


def _render_protocols(device: DeviceConfig, block: _Block, warnings: List[str]) -> None:
    if device.bgp is None and device.ospf is None:
        return
    block.open("protocols")
    if device.bgp is not None:
        bgp = device.bgp
        block.open("bgp")
        external = [n for n in bgp.neighbors if n.remote_as != bgp.asn]
        internal = [n for n in bgp.neighbors if n.remote_as == bgp.asn]
        clients = [n for n in internal if n.route_reflector_client]
        plain_internal = [n for n in internal if not n.route_reflector_client]
        for group_name, group_type, members in (
            ("EXTERNAL", "external", external),
            ("INTERNAL", "internal", plain_internal),
            ("CLIENTS", "internal", clients),
        ):
            if not members:
                continue
            block.open(f"group {group_name}")
            block.stmt(f"type {group_type}")
            if group_name == "CLIENTS":
                cluster = bgp.router_id if bgp.router_id is not None else 0
                block.stmt(f"cluster {int_to_ip(cluster)}")
            for neighbor in members:
                if not neighbor.send_community:
                    warnings.append(
                        f"neighbor {int_to_ip(neighbor.peer_ip)}: JunOS always "
                        "sends communities; send-community=false is not expressible"
                    )
                header = f"neighbor {int_to_ip(neighbor.peer_ip)}"
                block.open(header)
                if neighbor.remote_as != bgp.asn:
                    block.stmt(f"peer-as {neighbor.remote_as}")
                if neighbor.description:
                    block.stmt(f'description "{neighbor.description}"')
                if neighbor.import_policy:
                    block.stmt(f"import {neighbor.import_policy}")
                if neighbor.export_policy:
                    block.stmt(f"export {neighbor.export_policy}")
                block.close()
            block.close()  # group
        block.close()  # bgp
    if device.ospf is not None:
        ospf = device.ospf
        block.open("ospf")
        if ospf.reference_bandwidth != 100_000_000:
            block.stmt(f"reference-bandwidth {ospf.reference_bandwidth}")
        for export in sorted({r.route_map for r in ospf.redistributions if r.route_map}):
            block.stmt(f"export {export}")
        areas = sorted({settings.area for settings in ospf.interfaces})
        for area in areas:
            block.open(f"area {int_to_ip(area)}")
            for settings in ospf.interfaces:
                if settings.area != area:
                    continue
                # JunOS interfaces are unit-qualified; the interfaces
                # stanza renders unqualified model names as unit 0.
                reference = (
                    settings.interface
                    if "." in settings.interface
                    else f"{settings.interface}.0"
                )
                settings = type(settings)(
                    interface=reference,
                    area=settings.area,
                    cost=settings.cost,
                    passive=settings.passive,
                    hello_interval=settings.hello_interval,
                    dead_interval=settings.dead_interval,
                    network_type=settings.network_type,
                    source=settings.source,
                )
                needs_block = (
                    settings.cost is not None
                    or settings.passive
                    or settings.hello_interval != 10
                    or settings.dead_interval != 40
                    or settings.network_type != "broadcast"
                )
                if not needs_block:
                    block.stmt(f"interface {settings.interface}")
                    continue
                block.open(f"interface {settings.interface}")
                if settings.cost is not None:
                    block.stmt(f"metric {settings.cost}")
                if settings.passive:
                    block.stmt("passive")
                if settings.hello_interval != 10:
                    block.stmt(f"hello-interval {settings.hello_interval}")
                if settings.dead_interval != 40:
                    block.stmt(f"dead-interval {settings.dead_interval}")
                if settings.network_type != "broadcast":
                    block.stmt(f"interface-type {settings.network_type}")
                block.close()
            block.close()
        block.close()
    block.close()


def _render_firewall(device: DeviceConfig, block: _Block, warnings: List[str]) -> None:
    if not device.acls:
        return
    block.open("firewall")
    block.open("family inet")
    for name in sorted(device.acls):
        acl = device.acls[name]
        if acl.default_action is not AclAction.DENY:
            raise RenderError("JunOS filters end in implicit discard; permit default unsupported")
        block.open(f"filter {name}")
        for index, rule in enumerate(acl.lines):
            block.open(f"term t{index}")
            conditions: List[str] = []
            for label, wildcard in (("source-address", rule.src), ("destination-address", rule.dst)):
                if wildcard.is_any():
                    continue
                prefix = wildcard.as_prefix()
                if prefix is None:
                    raise RenderError(
                        f"ACL {name} rule {index}: discontiguous wildcard "
                        "has no JunOS equivalent"
                    )
                conditions.append(f"{label} {{ {prefix}; }}")
            if rule.protocol is not None:
                protocol = IP_PROTOCOL_NAMES.get(rule.protocol, str(rule.protocol))
                conditions.append(f"protocol {protocol};")
            for label, ports in (("source-port", rule.src_ports), ("destination-port", rule.dst_ports)):
                if not ports:
                    continue
                rendered = " ".join(
                    str(p.low) if p.low == p.high else f"{p.low}-{p.high}"
                    for p in ports
                )
                conditions.append(f"{label} {rendered};")
            if rule.icmp_type is not None:
                conditions.append(f"icmp-type {rule.icmp_type};")
            if conditions:
                block.open("from")
                for condition in conditions:
                    if condition.endswith(";"):
                        block.stmt(condition[:-1])
                    else:
                        block.lines.append(f"{_INDENT * block.depth}{condition}")
                block.close()
            block.stmt(
                "then accept" if rule.action is AclAction.PERMIT else "then discard"
            )
            block.close()
        block.close()
    block.close()
    block.close()


def render_juniper_device(device: DeviceConfig) -> Tuple[str, List[str]]:
    """Render ``device`` as JunOS text.  Returns (text, warnings)."""
    warnings: List[str] = []
    block = _Block()
    block.open("system")
    block.stmt(f"host-name {device.hostname}")
    block.close()
    _render_interfaces(device, block)
    _render_routing_options(device, block)
    _render_policy_options(device, block, warnings)
    _render_protocols(device, block, warnings)
    _render_firewall(device, block, warnings)
    return block.text(), warnings
