"""Reproduction of *Campion: Debugging Router Configuration Differences*
(Tang et al., SIGCOMM 2021).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.bdd` — from-scratch ROBDD engine (JavaBDD substitute),
* :mod:`repro.model` — vendor-independent configuration model (Batfish
  representation substitute), plus concrete policy evaluation,
* :mod:`repro.parsers` — Cisco IOS and Juniper JunOS parsers,
* :mod:`repro.encoding` — BDD encodings of packets, route
  advertisements, and per-component path equivalence classes,
* :mod:`repro.core` — the paper's contribution: SemanticDiff,
  StructuralDiff, HeaderLocalize, MatchPolicies, ConfigDiff, Present,
* :mod:`repro.baseline` — Minesweeper-style monolithic checker,
* :mod:`repro.srp` — stable-routing-problem simulator validating
  Theorem 3.3,
* :mod:`repro.workloads` — synthetic versions of the paper's evaluation
  networks (Figure 1, Table 6 data center, Table 8 university, §5.4
  ACL scaling).

Quick start::

    from repro.parsers import load_config
    from repro.core import config_diff, render_report

    report = config_diff(load_config("a.cfg"), load_config("b.cfg"))
    print(render_report(report))
"""

from .core import config_diff, render_report
from .parsers import load_config, parse_cisco, parse_config, parse_juniper

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "config_diff",
    "load_config",
    "parse_cisco",
    "parse_config",
    "parse_juniper",
    "render_report",
]
