"""Juniper JunOS configuration parser (hierarchical curly-brace format).

Parses the JunOS feature subset Campion models into the same
vendor-independent :class:`~repro.model.device.DeviceConfig` the Cisco
parser produces:

* ``system host-name``,
* ``interfaces`` (unit addresses, firewall filter bindings, disable),
* ``routing-options`` (static routes with next-hop/preference/tag,
  router-id, autonomous-system),
* ``policy-options`` (prefix-lists, communities — including the
  all-members-conjunction semantics behind the paper's Figure 1 bug —
  as-path definitions, and policy-statements with terms),
* ``protocols bgp`` (groups, neighbors, import/export, cluster ⇒ route
  reflector, remove send-community semantics: JunOS sends communities by
  default, §5.2),
* ``protocols ospf`` (areas, interface metrics, passive, timers,
  reference-bandwidth),
* ``firewall family inet filter`` (terms with from/then).

Vendor-semantic normalizations applied here (the heart of cross-vendor
differencing):

* ``from prefix-list NAME`` matches prefixes **exactly** — each list
  entry becomes an exact-length prefix range, which is the Figure 1
  prefix-list bug,
* ``route-filter`` modifiers (``exact``, ``orlonger``, ``upto``,
  ``prefix-length-range``) become explicit length ranges,
* ``community NAME members [a b]`` is a *conjunction* of members,
* BGP neighbors send communities by default (``send_community=True``),
* a policy-statement's fall-through is **accept** (JunOS's protocol
  default for BGP), versus IOS's implicit deny — the university
  network's differing fall-through behaviors (§5.2) emerge from exactly
  this pair of defaults.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..model import (
    Acl,
    AclAction,
    AclLine,
    Action,
    AsPathList,
    AsPathListEntry,
    BgpNeighbor,
    BgpProcess,
    Community,
    CommunityList,
    CommunityListEntry,
    DeviceConfig,
    Interface,
    IpWildcard,
    MatchAsPath,
    MatchCommunities,
    MatchPrefixList,
    MatchProtocol,
    MatchTag,
    OspfInterfaceSettings,
    OspfProcess,
    OspfRedistribution,
    PortRange,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    Redistribution,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetTag,
    SourceSpan,
    StaticRoute,
    ip_to_int,
)
from .. import perf
from ..model.acl import IP_PROTOCOL_NUMBERS
from ..model.types import ConfigError
from .common import NumberedLine, ParseContext, number_lines

__all__ = ["parse_juniper", "JunosStatement"]


# ---------------------------------------------------------------------------
# Hierarchical syntax tree
# ---------------------------------------------------------------------------


@dataclass
class JunosStatement:
    """One JunOS statement: words, optional children, and line extent."""

    words: List[str]
    children: List["JunosStatement"] = field(default_factory=list)
    start_line: int = 0
    end_line: int = 0

    @property
    def head(self) -> str:
        """The statement's first word (its keyword)."""
        return self.words[0] if self.words else ""

    def child(self, *heads: str) -> Optional["JunosStatement"]:
        """First child whose leading words equal ``heads``."""
        for statement in self.children:
            if tuple(statement.words[: len(heads)]) == heads:
                return statement
        return None

    def find_all(self, head: str) -> List["JunosStatement"]:
        """All children whose keyword is ``head``."""
        return [s for s in self.children if s.head == head]

    def span(self, filename: str, lines: Sequence[str]) -> SourceSpan:
        """SourceSpan covering the whole statement block."""
        text = tuple(
            lines[number - 1].rstrip()
            for number in range(self.start_line, self.end_line + 1)
            if 1 <= number <= len(lines)
        )
        return SourceSpan(filename, self.start_line, self.end_line, text)

    def header_span(self, filename: str, lines: Sequence[str]) -> SourceSpan:
        """SourceSpan covering only the statement's first line."""
        if 1 <= self.start_line <= len(lines):
            return SourceSpan(
                filename,
                self.start_line,
                self.start_line,
                (lines[self.start_line - 1].rstrip(),),
            )
        return SourceSpan(filename)


_TOKEN_RE = re.compile(r'"[^"]*"|[{};\[\]]|[^\s{};\[\]]+')


def _tokenize(lines: List[NumberedLine]) -> List[Tuple[str, int]]:
    """Tokens with line numbers; comments (# and /* */) stripped."""
    tokens: List[Tuple[str, int]] = []
    in_block_comment = False
    for line in lines:
        text = line.text
        if in_block_comment:
            end = text.find("*/")
            if end < 0:
                continue
            text = text[end + 2 :]
            in_block_comment = False
        start = text.find("/*")
        while start >= 0:
            end = text.find("*/", start + 2)
            if end < 0:
                text = text[:start]
                in_block_comment = True
                break
            text = text[:start] + text[end + 2 :]
            start = text.find("/*")
        hash_pos = text.find("#")
        if hash_pos >= 0:
            text = text[:hash_pos]
        for match in _TOKEN_RE.finditer(text):
            token = match.group(0)
            if token.startswith('"') and token.endswith('"'):
                token = token[1:-1]
            tokens.append((token, line.number))
    return tokens


def parse_junos_tree(text: str, context: ParseContext) -> JunosStatement:
    """Parse JunOS text into a statement tree rooted at a synthetic node."""
    lines = number_lines(text)
    tokens = _tokenize(lines)
    root = JunosStatement(words=["<root>"], start_line=1, end_line=len(lines))
    stack: List[JunosStatement] = [root]
    current_words: List[str] = []
    first_line = 0
    in_brackets = False

    for token, line_number in tokens:
        if not current_words:
            first_line = line_number
        if token == "[":
            in_brackets = True
            continue
        if token == "]":
            in_brackets = False
            continue
        if in_brackets:
            current_words.append(token)
            continue
        if token == "{":
            statement = JunosStatement(
                words=list(current_words), start_line=first_line, end_line=first_line
            )
            stack[-1].children.append(statement)
            stack.append(statement)
            current_words = []
        elif token == "}":
            if current_words:
                stack[-1].children.append(
                    JunosStatement(
                        words=list(current_words),
                        start_line=first_line,
                        end_line=line_number,
                    )
                )
                current_words = []
            if len(stack) > 1:
                closed = stack.pop()
                closed.end_line = line_number
        elif token == ";":
            if current_words:
                stack[-1].children.append(
                    JunosStatement(
                        words=list(current_words),
                        start_line=first_line,
                        end_line=line_number,
                    )
                )
                current_words = []
        else:
            current_words.append(token)

    if current_words:
        stack[-1].children.append(
            JunosStatement(
                words=current_words, start_line=first_line, end_line=first_line
            )
        )
    return root


# ---------------------------------------------------------------------------
# Interpretation
# ---------------------------------------------------------------------------


def parse_juniper(
    text: str, filename: str = "<junos-config>", strict: bool = False
) -> DeviceConfig:
    """Parse a JunOS configuration into a DeviceConfig.

    In the default lenient mode an unparseable stanza is recorded as an
    error-severity :class:`~repro.diagnostics.Diagnostic` (with line
    provenance) on the returned device and skipped; ``strict=True``
    restores fail-fast :class:`ConfigError` behavior.
    """
    with perf.timer("parse.juniper"):
        context = ParseContext(filename, strict=strict)
        tree = parse_junos_tree(text, context)
        interpreter = _JunosInterpreter(text, filename, tree, context)
        device = interpreter.interpret()
    perf.add("parse.juniper.lines", len(interpreter.raw_lines))
    with perf.timer("parse.fingerprint"):
        device.fingerprints  # computed at parse time, cached on the model
    return device


class _JunosInterpreter:
    def __init__(
        self, text: str, filename: str, tree: JunosStatement, context: ParseContext
    ):
        self.tree = tree
        self.context = context
        self.filename = filename
        self.raw_lines = [line.text for line in number_lines(text)]
        self.device = DeviceConfig(
            hostname="juniper-router", vendor="juniper", filename=filename
        )
        self.device.raw_lines = tuple(self.raw_lines)

    def _span(self, statement: JunosStatement) -> SourceSpan:
        return statement.span(self.filename, self.raw_lines)

    def _header(self, statement: JunosStatement) -> SourceSpan:
        return statement.header_span(self.filename, self.raw_lines)

    def _warn(self, statement: JunosStatement, reason: str) -> None:
        self.context.warnings.append(_warning(statement, reason))
        self.context.sink.warning(reason, span=self._header(statement))

    def _guarded(self, interpret, statement: JunosStatement) -> None:
        """Run one stanza's interpreter, recording-and-skipping failures.

        Strict mode re-raises (via the sink) at the first unparseable
        stanza; lenient mode keeps the stanza's span in the diagnostics
        so reports can flag the reduced coverage.
        """
        try:
            interpret(statement)
        except (ConfigError, ValueError, IndexError, KeyError) as exc:
            self.context.error_span(
                self._header(statement),
                f"parse error in {' '.join(statement.words) or 'stanza'}: {exc}",
            )

    # -- top level -----------------------------------------------------------
    def interpret(self) -> DeviceConfig:
        for statement in self.tree.children:
            head = statement.head
            if head == "system":
                self._guarded(self._interpret_system, statement)
            elif head == "interfaces":
                self._guarded(self._interpret_interfaces, statement)
            elif head == "routing-options":
                self._guarded(self._interpret_routing_options, statement)
            elif head == "policy-options":
                self._interpret_policy_options(statement)
            elif head == "protocols":
                self._guarded(self._interpret_protocols, statement)
            elif head == "firewall":
                self._guarded(self._interpret_firewall, statement)
            else:
                self._warn(statement, "unsupported top-level stanza")
        self.device.diagnostics = tuple(self.context.diagnostics)
        return self.device

    def _interpret_system(self, system: JunosStatement) -> None:
        host_name = system.child("host-name")
        if host_name is not None and len(host_name.words) >= 2:
            self.device.hostname = host_name.words[1]

    # -- interfaces ------------------------------------------------------------
    def _interpret_interfaces(self, interfaces: JunosStatement) -> None:
        for interface_statement in interfaces.children:
            name = interface_statement.head
            description = ""
            shutdown = interface_statement.child("disable") is not None
            address: Optional[Prefix] = None
            acl_in: Optional[str] = None
            acl_out: Optional[str] = None
            description_statement = interface_statement.child("description")
            if description_statement is not None:
                description = " ".join(description_statement.words[1:])
            for unit in interface_statement.find_all("unit"):
                unit_number = unit.words[1] if len(unit.words) > 1 else "0"
                family = unit.child("family", "inet")
                if family is None:
                    continue
                address_statement = family.child("address")
                if address_statement is not None and len(address_statement.words) >= 2:
                    address = _interface_prefix(address_statement.words[1])
                filter_statement = family.child("filter")
                if filter_statement is not None:
                    input_statement = filter_statement.child("input")
                    output_statement = filter_statement.child("output")
                    if input_statement is not None:
                        acl_in = input_statement.words[1]
                    if output_statement is not None:
                        acl_out = output_statement.words[1]
                full_name = f"{name}.{unit_number}"
                self.device.interfaces[full_name] = Interface(
                    name=full_name,
                    address=address,
                    description=description,
                    shutdown=shutdown,
                    acl_in=acl_in,
                    acl_out=acl_out,
                    source=self._span(interface_statement),
                )

    # -- routing options -----------------------------------------------------------
    def _interpret_routing_options(self, routing: JunosStatement) -> None:
        static = routing.child("static")
        if static is not None:
            for route in static.find_all("route"):
                self._interpret_static_route(route)
        router_id = routing.child("router-id")
        autonomous_system = routing.child("autonomous-system")
        self._router_id = (
            ip_to_int(router_id.words[1]) if router_id is not None else None
        )
        self._asn = (
            int(autonomous_system.words[1]) if autonomous_system is not None else 0
        )

    def _interpret_static_route(self, route: JunosStatement) -> None:
        if len(route.words) < 2:
            self._warn(route, "static route needs a prefix")
            return
        prefix = Prefix.parse(route.words[1])
        next_hop: Optional[int] = None
        interface: Optional[str] = None
        preference = 5  # JunOS static default preference
        tag: Optional[int] = None
        if "discard" in route.words or "reject" in route.words:
            interface = "discard"
        for child in route.children:
            if child.head == "next-hop" and len(child.words) >= 2:
                try:
                    next_hop = ip_to_int(child.words[1])
                except ConfigError:
                    interface = child.words[1]
            elif child.head == "preference" and len(child.words) >= 2:
                preference = int(child.words[1])
            elif child.head == "tag" and len(child.words) >= 2:
                tag = int(child.words[1])
            elif child.head in ("discard", "reject"):
                interface = "discard"
            else:
                self._warn(child, "unsupported static route option")
        self.device.static_routes.append(
            StaticRoute(
                prefix=prefix,
                next_hop=next_hop,
                interface=interface,
                admin_distance=preference,
                tag=tag,
                source=self._span(route),
            )
        )

    # -- policy options ---------------------------------------------------------------
    def _interpret_policy_options(self, policy_options: JunosStatement) -> None:
        for statement in policy_options.children:
            head = statement.head
            if head == "prefix-list":
                self._guarded(self._interpret_prefix_list, statement)
            elif head == "community":
                self._guarded(self._interpret_community, statement)
            elif head == "as-path":
                self._guarded(self._interpret_as_path, statement)
            elif head == "policy-statement":
                self._guarded(self._interpret_policy_statement, statement)
            else:
                self._warn(statement, "unsupported policy-options stanza")

    def _interpret_prefix_list(self, statement: JunosStatement) -> None:
        name = statement.words[1]
        entries = []
        for child in statement.children:
            prefix = Prefix.parse(child.words[0])
            entries.append(
                PrefixListEntry(
                    action=Action.PERMIT,
                    # JunOS prefix-lists match exactly: the Figure 1 bug.
                    range=PrefixRange.exact(prefix),
                    source=self._header(child),
                )
            )
        self.device.prefix_lists[name] = PrefixList(name, tuple(entries))

    def _interpret_community(self, statement: JunosStatement) -> None:
        # community NAME members [ 10:10 10:11 ];   (or a single regex)
        words = statement.words
        if len(words) >= 3 and words[2] == "members":
            name = words[1]
            members = words[3:]
        elif statement.child("members") is not None:
            name = words[1]
            members = statement.child("members").words[1:]
        else:
            self._warn(statement, "unsupported community definition")
            return
        span = self._header(statement)
        literal_members = []
        regex: Optional[str] = None
        for member in members:
            try:
                literal_members.append(Community.parse(member))
            except ConfigError:
                regex = member  # regex member (e.g. "^10:1.*$")
        if regex is not None and not literal_members:
            entry = CommunityListEntry(action=Action.PERMIT, regex=regex, source=span)
        elif literal_members and regex is None:
            # JunOS community with several members matches routes carrying
            # ALL of them — one conjunction entry (the Table 2(b) bug).
            entry = CommunityListEntry(
                action=Action.PERMIT,
                communities=frozenset(literal_members),
                source=span,
            )
        else:
            self._warn(statement, "mixed literal/regex community unsupported")
            return
        self.device.community_lists[name] = CommunityList(name, (entry,))

    def _interpret_as_path(self, statement: JunosStatement) -> None:
        # as-path NAME "regex";
        name = statement.words[1]
        regex = " ".join(statement.words[2:])
        self.device.as_path_lists[name] = AsPathList(
            name,
            (
                AsPathListEntry(
                    action=Action.PERMIT, regex=regex, source=self._header(statement)
                ),
            ),
        )

    def _interpret_policy_statement(self, statement: JunosStatement) -> None:
        name = statement.words[1]
        clauses: List[RouteMapClause] = []
        for term in statement.find_all("term"):
            clause = self._interpret_term(name, term)
            if clause is not None:
                clauses.append(clause)
        # Anonymous from/then directly under the policy acts as one term.
        if statement.child("from") is not None or statement.child("then") is not None:
            clause = self._interpret_term(name, statement, anonymous=True)
            if clause is not None:
                clauses.append(clause)
        self.device.route_maps[name] = RouteMap(
            name=name,
            clauses=tuple(clauses),
            # JunOS protocol default for BGP policies: accept (vs IOS deny).
            default_action=Action.PERMIT,
            source=self._span(statement),
        )

    def _interpret_term(
        self, policy_name: str, term: JunosStatement, anonymous: bool = False
    ) -> Optional[RouteMapClause]:
        term_name = (
            f"term {term.words[1]}" if not anonymous and len(term.words) > 1 else "term <anonymous>"
        )
        matches = []
        sets = []
        action: Optional[Action] = None

        # Both the block form (``from { ... }``) and the inline form
        # (``from community COMM;``) appear as children headed "from".
        for from_stmt in (c for c in term.children if c.head == "from"):
            matches.extend(self._interpret_from(from_stmt))

        for then_stmt in (c for c in term.children if c.head == "then"):
            term_action, term_sets = self._interpret_then(then_stmt)
            if term_action is not None:
                action = term_action
            sets.extend(term_sets)

        if action is None:
            # JunOS flow-through term; modeled as accept-with-sets (see
            # module docstring: a documented simplification).
            action = Action.PERMIT
        return RouteMapClause(
            name=term_name,
            action=action,
            matches=tuple(matches),
            sets=tuple(sets),
            source=self._span(term),
        )

    def _interpret_from(self, from_statement: JunosStatement) -> List:
        """Both inline (``from community COMM;``) and block form.

        JunOS semantics: within one ``from``, conditions of *different*
        kinds conjoin, but multiple prefix-type conditions (prefix-lists
        and route-filters) **disjoin**.  We realize the disjunction by
        concatenating their entries into one synthetic first-match
        prefix list (permit entries OR together).
        """
        matches = []
        if len(from_statement.words) > 1:
            matches.extend(self._from_condition(from_statement.words[1:], from_statement))
        for child in from_statement.children:
            matches.extend(self._from_condition(child.words, child))
        prefix_matches = [m for m in matches if isinstance(m, MatchPrefixList)]
        if len(prefix_matches) <= 1:
            return matches
        others = [m for m in matches if not isinstance(m, MatchPrefixList)]
        entries = []
        span = prefix_matches[0].source
        names = []
        for match in prefix_matches:
            entries.extend(match.prefix_list.entries)
            names.append(match.prefix_list.name)
            span = span.merge(match.source)
        merged = PrefixList(" | ".join(names), tuple(entries))
        return [MatchPrefixList(merged, span)] + others

    def _from_condition(self, words: List[str], statement: JunosStatement) -> List:
        span = self._header(statement)
        if not words:
            return []
        head = words[0]
        if head == "prefix-list" and len(words) >= 2:
            name = words[1]
            prefix_list = self.device.prefix_lists.get(name) or PrefixList(name, ())
            return [MatchPrefixList(prefix_list, span)]
        if head == "route-filter" and len(words) >= 3:
            prefix_range = _route_filter_range(words)
            synthetic = PrefixList(
                f"route-filter {words[1]}",
                (PrefixListEntry(Action.PERMIT, prefix_range, span),),
            )
            return [MatchPrefixList(synthetic, span)]
        if head == "community" and len(words) >= 2:
            name = words[1]
            community_list = self.device.community_lists.get(name) or CommunityList(
                name, ()
            )
            return [MatchCommunities(community_list, span)]
        if head == "as-path" and len(words) >= 2:
            name = words[1]
            as_path_list = self.device.as_path_lists.get(name) or AsPathList(name, ())
            return [MatchAsPath(as_path_list, span)]
        if head == "protocol" and len(words) >= 2:
            return [MatchProtocol(words[1], span)]
        if head == "tag" and len(words) >= 2:
            return [MatchTag(int(words[1]), span)]
        self._warn(statement, f"unsupported from condition {head!r}")
        return []

    def _interpret_then(
        self, then_statement: JunosStatement
    ) -> Tuple[Optional[Action], List]:
        action: Optional[Action] = None
        sets: List = []
        directives: List[Tuple[List[str], JunosStatement]] = []
        if len(then_statement.words) > 1:
            directives.append((then_statement.words[1:], then_statement))
        for child in then_statement.children:
            directives.append((child.words, child))
        for words, statement in directives:
            span = self._header(statement)
            head = words[0] if words else ""
            if head == "accept":
                action = Action.PERMIT
            elif head == "reject":
                action = Action.DENY
            elif head == "local-preference" and len(words) >= 2:
                sets.append(SetLocalPref(int(words[1]), span))
            elif head == "metric" and len(words) >= 2:
                sets.append(SetMed(int(words[1]), span))
            elif head == "community" and len(words) >= 3:
                mode = words[1]  # add | set | delete
                name = words[2]
                community_list = self.device.community_lists.get(name)
                members = (
                    community_list.mentioned_communities()
                    if community_list is not None
                    else frozenset()
                )
                if mode in ("add", "set"):
                    sets.append(SetCommunities(members, mode == "add", span))
                else:
                    self._warn(statement, f"unsupported community action {mode!r}")
            elif head == "next-hop" and len(words) >= 2 and words[1] != "self":
                try:
                    sets.append(SetNextHop(ip_to_int(words[1]), span))
                except ConfigError:
                    self._warn(statement, "unsupported next-hop form")
            elif head == "as-path-prepend" and len(words) >= 2:
                sets.append(
                    SetAsPathPrepend(tuple(int(word) for word in words[1:]), span)
                )
            elif head == "tag" and len(words) >= 2:
                sets.append(SetTag(int(words[1]), span))
            elif head in ("next", "default-action"):
                self._warn(statement, f"unsupported then directive {head!r}")
            elif head:
                self._warn(statement, f"unsupported then directive {head!r}")
        return action, sets

    # -- protocols ------------------------------------------------------------------
    def _interpret_protocols(self, protocols: JunosStatement) -> None:
        bgp = protocols.child("bgp")
        if bgp is not None:
            self._interpret_bgp(bgp)
        ospf = protocols.child("ospf")
        if ospf is not None:
            self._interpret_ospf(ospf)

    def _interpret_bgp(self, bgp: JunosStatement) -> None:
        neighbors: List[BgpNeighbor] = []
        redistributions: List[Redistribution] = []
        group_level_export: Dict[str, Optional[str]] = {}
        for group in bgp.find_all("group"):
            group_import = _policy_name(group.child("import"))
            group_export = _policy_name(group.child("export"))
            cluster = group.child("cluster") is not None
            group_type = group.child("type")
            for neighbor_statement in group.find_all("neighbor"):
                peer_text = neighbor_statement.words[1]
                peer = ip_to_int(peer_text)
                peer_as_statement = neighbor_statement.child("peer-as")
                remote_as = (
                    int(peer_as_statement.words[1])
                    if peer_as_statement is not None
                    else self._asn
                )
                import_policy = (
                    _policy_name(neighbor_statement.child("import")) or group_import
                )
                export_policy = (
                    _policy_name(neighbor_statement.child("export")) or group_export
                )
                description_statement = neighbor_statement.child("description")
                description = (
                    " ".join(description_statement.words[1:])
                    if description_statement is not None
                    else ""
                )
                neighbors.append(
                    BgpNeighbor(
                        peer_ip=peer,
                        remote_as=remote_as,
                        description=description,
                        import_policy=import_policy,
                        export_policy=export_policy,
                        route_reflector_client=cluster,
                        send_community=True,  # JunOS default (§5.2)
                        next_hop_self=False,
                        source=self._span(neighbor_statement),
                    )
                )
        # JunOS redistribution is via export policies with "from protocol";
        # surface those as Redistribution records for structural pairing.
        for route_map in self.device.route_maps.values():
            protocols_matched = {
                condition.protocol
                for clause in route_map.clauses
                for condition in clause.matches
                if isinstance(condition, MatchProtocol)
            }
            for protocol in sorted(protocols_matched):
                if protocol in ("static", "ospf", "connected", "direct"):
                    normalized = "connected" if protocol == "direct" else protocol
                    redistributions.append(
                        Redistribution(
                            from_protocol=normalized,
                            route_map=route_map.name,
                            source=route_map.source,
                        )
                    )
        self.device.bgp = BgpProcess(
            asn=self._asn,
            router_id=getattr(self, "_router_id", None),
            neighbors=tuple(sorted(neighbors, key=lambda n: n.peer_ip)),
            redistributions=tuple(redistributions),
            source=self._span(bgp),
        )

    def _interpret_ospf(self, ospf: JunosStatement) -> None:
        interfaces: List[OspfInterfaceSettings] = []
        reference_bandwidth = 100_000_000
        reference_statement = ospf.child("reference-bandwidth")
        if reference_statement is not None:
            reference_bandwidth = _bandwidth(reference_statement.words[1])
        for area in ospf.find_all("area"):
            area_id = _area_id(area.words[1])
            for interface_statement in area.find_all("interface"):
                name = interface_statement.words[1]
                metric_statement = interface_statement.child("metric")
                hello_statement = interface_statement.child("hello-interval")
                dead_statement = interface_statement.child("dead-interval")
                interface_type = interface_statement.child("interface-type")
                interfaces.append(
                    OspfInterfaceSettings(
                        interface=name,
                        area=area_id,
                        cost=(
                            int(metric_statement.words[1])
                            if metric_statement is not None
                            else None
                        ),
                        passive=interface_statement.child("passive") is not None,
                        hello_interval=(
                            int(hello_statement.words[1])
                            if hello_statement is not None
                            else 10
                        ),
                        dead_interval=(
                            int(dead_statement.words[1])
                            if dead_statement is not None
                            else 40
                        ),
                        network_type=(
                            interface_type.words[1]
                            if interface_type is not None
                            else "broadcast"
                        ),
                        source=self._span(interface_statement),
                    )
                )
        export_policies = [
            _policy_name(statement) for statement in ospf.find_all("export")
        ]
        redistributions = []
        for policy in export_policies:
            if policy is None:
                continue
            route_map = self.device.route_maps.get(policy)
            protocols_matched = set()
            if route_map is not None:
                protocols_matched = {
                    condition.protocol
                    for clause in route_map.clauses
                    for condition in clause.matches
                    if isinstance(condition, MatchProtocol)
                }
            if not protocols_matched:
                protocols_matched = {"bgp"}
            for protocol in sorted(protocols_matched):
                normalized = "connected" if protocol == "direct" else protocol
                redistributions.append(
                    OspfRedistribution(
                        from_protocol=normalized,
                        route_map=policy,
                        source=self._span(ospf),
                    )
                )
        existing = self.device.ospf
        if existing is not None:
            # JunOS configs occasionally split a stanza across blocks (and
            # our generators concatenate snippets); merge instead of
            # clobbering the earlier interpretation.
            interfaces = list(existing.interfaces) + interfaces
            redistributions = list(existing.redistributions) + redistributions
        self.device.ospf = OspfProcess(
            process_id="1",
            router_id=getattr(self, "_router_id", None),
            interfaces=tuple(interfaces),
            redistributions=tuple(redistributions),
            reference_bandwidth=reference_bandwidth,
            source=self._span(ospf),
        )

    # -- firewall -----------------------------------------------------------------------
    def _interpret_firewall(self, firewall: JunosStatement) -> None:
        family = firewall.child("family", "inet")
        filters = family.find_all("filter") if family is not None else []
        filters.extend(firewall.find_all("filter"))
        for filter_statement in filters:
            name = filter_statement.words[1]
            lines: List[AclLine] = []
            for term in filter_statement.find_all("term"):
                line = self._interpret_filter_term(term)
                if line is not None:
                    lines.append(line)
            self.device.acls[name] = Acl(
                name=name,
                lines=tuple(lines),
                default_action=AclAction.DENY,  # JunOS implicit discard
                source=self._span(filter_statement),
            )

    def _interpret_filter_term(self, term: JunosStatement) -> Optional[AclLine]:
        term_name = term.words[1] if len(term.words) > 1 else ""
        src = IpWildcard.any()
        dst = IpWildcard.any()
        protocol: Optional[int] = None
        src_ports: List[PortRange] = []
        dst_ports: List[PortRange] = []
        icmp_type: Optional[int] = None

        from_statement = term.child("from")
        if from_statement is not None:
            for child in from_statement.children:
                head = child.head
                if head == "source-address":
                    src = _address_block_wildcard(child)
                elif head == "destination-address":
                    dst = _address_block_wildcard(child)
                elif head == "protocol" and len(child.words) >= 2:
                    word = child.words[1]
                    protocol = IP_PROTOCOL_NUMBERS.get(
                        word, int(word) if word.isdigit() else None
                    )
                elif head == "source-port":
                    src_ports.extend(_ports(child.words[1:]))
                elif head == "destination-port":
                    dst_ports.extend(_ports(child.words[1:]))
                elif head == "icmp-type" and len(child.words) >= 2:
                    icmp_names = {"echo-request": 8, "echo-reply": 0}
                    word = child.words[1]
                    icmp_type = icmp_names.get(word, int(word) if word.isdigit() else None)
                else:
                    self._warn(child, f"unsupported filter condition {head!r}")

        then_statement = term.child("then")
        action = AclAction.PERMIT
        if then_statement is not None:
            words = then_statement.words[1:]
            for child in then_statement.children:
                words.extend(child.words)
            if "discard" in words or "reject" in words:
                action = AclAction.DENY
            elif "accept" in words:
                action = AclAction.PERMIT

        return AclLine(
            action=action,
            src=src,
            dst=dst,
            protocol=protocol,
            src_ports=tuple(src_ports),
            dst_ports=tuple(dst_ports),
            icmp_type=icmp_type,
            name=f"term {term_name}",
            source=self._span(term),
        )


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _warning(statement: JunosStatement, reason: str):
    from .common import ParserWarning

    return ParserWarning(statement.start_line, " ".join(statement.words), reason)


def _policy_name(statement: Optional[JunosStatement]) -> Optional[str]:
    if statement is None or len(statement.words) < 2:
        return None
    return statement.words[1]


def _interface_prefix(text: str) -> Prefix:
    """Interface address keeping host bits (see cisco._InterfacePrefix)."""
    address, _, length_text = text.partition("/")
    host = ip_to_int(address)
    length = int(length_text) if length_text else 32

    class _HostPrefix(Prefix):
        def __post_init__(self) -> None:
            pass

    return _HostPrefix(host, length)


def _route_filter_range(words: List[str]) -> PrefixRange:
    """route-filter P/L exact|orlonger|longer|upto /N|prefix-length-range /A-/B."""
    prefix = Prefix.parse(words[1])
    modifier = words[2] if len(words) > 2 else "exact"
    if modifier == "exact":
        return PrefixRange.exact(prefix)
    if modifier == "orlonger":
        return PrefixRange(prefix, prefix.length, 32)
    if modifier == "longer":
        return PrefixRange(prefix, min(prefix.length + 1, 32), 32)
    if modifier == "upto" and len(words) > 3:
        high = int(words[3].lstrip("/"))
        return PrefixRange(prefix, prefix.length, high)
    if modifier == "prefix-length-range" and len(words) > 3:
        low_text, _, high_text = words[3].partition("-")
        return PrefixRange(prefix, int(low_text.lstrip("/")), int(high_text.lstrip("/")))
    raise ConfigError(f"unsupported route-filter modifier {modifier!r}")


def _address_block_wildcard(statement: JunosStatement) -> IpWildcard:
    """A source-address/destination-address block; single prefix supported.

    Multiple prefixes per block would need a disjunctive AclLine address;
    the model keeps one wildcard per line, so multi-address blocks raise
    and callers split terms (our generators always emit one per block).
    """
    prefixes = [child.words[0] for child in statement.children]
    if len(statement.words) >= 2:
        prefixes.append(statement.words[1])
    if not prefixes:
        return IpWildcard.any()
    if len(prefixes) > 1:
        raise ConfigError("multiple addresses per filter block unsupported")
    return IpWildcard.from_prefix(Prefix.parse(prefixes[0]))


def _ports(words: List[str]) -> List[PortRange]:
    ranges = []
    for word in words:
        if "-" in word:
            low_text, _, high_text = word.partition("-")
            ranges.append(PortRange(int(low_text), int(high_text)))
        else:
            from .cisco import _port_number

            ranges.append(PortRange.single(_port_number(word)))
    return ranges


def _area_id(word: str) -> int:
    if "." in word:
        return ip_to_int(word)
    return int(word)


def _bandwidth(word: str) -> int:
    word = word.lower()
    multiplier = 1
    if word.endswith("g"):
        multiplier, word = 1_000_000_000, word[:-1]
    elif word.endswith("m"):
        multiplier, word = 1_000_000, word[:-1]
    elif word.endswith("k"):
        multiplier, word = 1_000, word[:-1]
    return int(float(word) * multiplier)
