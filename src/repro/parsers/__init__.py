"""Configuration parsers (Batfish substitute): Cisco IOS and Juniper JunOS."""

from .cisco import parse_cisco
from .common import NumberedLine, ParseContext, ParserWarning, number_lines
from .juniper import JunosStatement, parse_juniper
from .loader import detect_dialect, load_config, parse_config

__all__ = [
    "JunosStatement",
    "NumberedLine",
    "ParseContext",
    "ParserWarning",
    "detect_dialect",
    "load_config",
    "number_lines",
    "parse_cisco",
    "parse_config",
    "parse_juniper",
]
