"""Dialect detection and convenience loading."""

from __future__ import annotations

import pathlib
from typing import Union

from ..model.device import DeviceConfig
from ..model.types import ConfigError
from .cisco import parse_cisco
from .juniper import parse_juniper

__all__ = ["detect_dialect", "parse_config", "load_config"]

# Tokens that only appear in one dialect; scoring by hits is robust to
# short snippets (the Figure 1 excerpts detect correctly).
_CISCO_MARKERS = (
    "ip route ",
    "ip prefix-list",
    "route-map ",
    "access-list",
    "router bgp",
    "router ospf",
    "ip community-list",
)
_JUNIPER_MARKERS = (
    "policy-statement",
    "routing-options",
    "policy-options",
    "host-name",
    "prefix-list ",
    "firewall",
    "then {",
    "term ",
)


def detect_dialect(text: str, filename: str = "<config>") -> str:
    """Guess ``"cisco"`` or ``"juniper"`` from configuration text.

    An empty (or whitespace-only) configuration gets its own spanful
    error naming the file — "cannot detect dialect" on an empty file
    sends an operator hunting for markers that are not there.
    """
    if not text.strip():
        raise ConfigError(f"empty configuration: {filename}")
    if "{" in text and "}" in text:
        return "juniper"
    cisco_score = sum(text.count(marker) for marker in _CISCO_MARKERS)
    juniper_score = sum(text.count(marker) for marker in _JUNIPER_MARKERS)
    if cisco_score == 0 and juniper_score == 0:
        raise ConfigError(f"cannot detect configuration dialect: {filename}")
    return "cisco" if cisco_score >= juniper_score else "juniper"


def parse_config(
    text: str,
    filename: str = "<config>",
    dialect: str = "auto",
    strict: bool = False,
) -> DeviceConfig:
    """Parse text in the given (or detected) dialect.

    ``arista`` is accepted as an alias for the Cisco parser: EOS syntax
    is IOS-compatible across the feature subset Campion models, which is
    how the paper's tool covers "any vendor format Batfish supports"
    beyond its two unparsed dialects (§4).  The device is tagged with
    its real vendor so reports stay honest.

    ``strict`` selects fail-fast parsing; the default lenient mode
    records unparseable stanzas on ``DeviceConfig.diagnostics`` and
    skips them (see :mod:`repro.diagnostics`).
    """
    if dialect == "auto":
        dialect = detect_dialect(text, filename)
    if dialect in ("cisco", "arista"):
        device = parse_cisco(text, filename, strict=strict)
        if dialect == "arista":
            device.vendor = "arista"
        return device
    if dialect == "juniper":
        return parse_juniper(text, filename, strict=strict)
    raise ConfigError(f"unknown dialect {dialect!r}")


def load_config(
    path: Union[str, pathlib.Path], dialect: str = "auto", strict: bool = False
) -> DeviceConfig:
    """Read and parse a configuration file."""
    path = pathlib.Path(path)
    return parse_config(
        path.read_text(), filename=str(path), dialect=dialect, strict=strict
    )
