"""Shared parser utilities: numbered-line handling and token helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..diagnostics import Diagnostic, DiagnosticSink, Severity
from ..model.types import ConfigError, SourceSpan

__all__ = ["NumberedLine", "number_lines", "ParserWarning", "ParseContext"]


@dataclass(frozen=True)
class NumberedLine:
    """One raw configuration line with its 1-based line number."""

    number: int
    text: str

    @property
    def stripped(self) -> str:
        """The line without surrounding whitespace."""
        return self.text.strip()

    @property
    def indent(self) -> int:
        """Leading-whitespace width (IOS block structure)."""
        return len(self.text) - len(self.text.lstrip())

    def tokens(self) -> List[str]:
        """Whitespace-separated tokens of the line."""
        return self.stripped.split()

    def span(self, filename: str) -> SourceSpan:
        """A single-line SourceSpan for this line."""
        return SourceSpan(filename, self.number, self.number, (self.text.rstrip(),))


def number_lines(text: str) -> List[NumberedLine]:
    """Split raw text into numbered lines, keeping blanks for numbering."""
    return [
        NumberedLine(number, line)
        for number, line in enumerate(text.splitlines(), start=1)
    ]


@dataclass(frozen=True)
class ParserWarning:
    """A non-fatal parse issue: unsupported or malformed construct.

    Campion-style tools must not die on the long tail of vendor syntax;
    we record what was skipped so callers can audit coverage (the paper's
    §5.1 "not fully supported format" case degraded output the same way).
    """

    line: int
    text: str
    reason: str


class ParseContext:
    """Accumulates warnings/diagnostics and error helpers during a parse.

    ``strict`` selects the failure policy for *unparseable* stanzas (the
    ones a parser routes through :meth:`error`): strict raises
    :class:`ConfigError` at the first one, lenient records a
    :class:`~repro.diagnostics.Diagnostic` and lets the parser skip the
    stanza.  Ignored-by-design constructs always go through
    :meth:`warn`, which never fails in either mode.
    """

    def __init__(self, filename: str, strict: bool = False):
        self.filename = filename
        self.strict = strict
        self.warnings: List[ParserWarning] = []
        self.sink = DiagnosticSink(strict=strict, filename=filename)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """All structured records collected so far."""
        return self.sink.diagnostics

    def warn(self, line: NumberedLine, reason: str) -> None:
        """Record a non-fatal parse issue (unsupported-by-design)."""
        self.warnings.append(ParserWarning(line.number, line.stripped, reason))
        self.sink.warning(reason, span=line.span(self.filename))

    def error(self, line: NumberedLine, reason: str) -> None:
        """Record an unparseable stanza — raises in strict mode."""
        self.sink.error(reason, span=line.span(self.filename))
        self.warnings.append(ParserWarning(line.number, line.stripped, reason))

    def error_span(self, span: SourceSpan, reason: str) -> None:
        """Record an unparseable region — raises in strict mode."""
        self.sink.error(reason, span=span)
        self.warnings.append(ParserWarning(span.start_line, span.render(), reason))

    def fail(self, line: NumberedLine, reason: str) -> ConfigError:
        """Build a ConfigError pointing at ``line``."""
        return ConfigError(
            f"{self.filename}:{line.number}: {reason}: {line.stripped!r}"
        )
