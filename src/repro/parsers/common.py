"""Shared parser utilities: numbered-line handling and token helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..model.types import ConfigError, SourceSpan

__all__ = ["NumberedLine", "number_lines", "ParserWarning", "ParseContext"]


@dataclass(frozen=True)
class NumberedLine:
    """One raw configuration line with its 1-based line number."""

    number: int
    text: str

    @property
    def stripped(self) -> str:
        """The line without surrounding whitespace."""
        return self.text.strip()

    @property
    def indent(self) -> int:
        """Leading-whitespace width (IOS block structure)."""
        return len(self.text) - len(self.text.lstrip())

    def tokens(self) -> List[str]:
        """Whitespace-separated tokens of the line."""
        return self.stripped.split()

    def span(self, filename: str) -> SourceSpan:
        """A single-line SourceSpan for this line."""
        return SourceSpan(filename, self.number, self.number, (self.text.rstrip(),))


def number_lines(text: str) -> List[NumberedLine]:
    """Split raw text into numbered lines, keeping blanks for numbering."""
    return [
        NumberedLine(number, line)
        for number, line in enumerate(text.splitlines(), start=1)
    ]


@dataclass(frozen=True)
class ParserWarning:
    """A non-fatal parse issue: unsupported or malformed construct.

    Campion-style tools must not die on the long tail of vendor syntax;
    we record what was skipped so callers can audit coverage (the paper's
    §5.1 "not fully supported format" case degraded output the same way).
    """

    line: int
    text: str
    reason: str


class ParseContext:
    """Accumulates warnings and provides error helpers during a parse."""

    def __init__(self, filename: str):
        self.filename = filename
        self.warnings: List[ParserWarning] = []

    def warn(self, line: NumberedLine, reason: str) -> None:
        """Record a non-fatal parse issue."""
        self.warnings.append(ParserWarning(line.number, line.stripped, reason))

    def fail(self, line: NumberedLine, reason: str) -> ConfigError:
        """Build a ConfigError pointing at ``line``."""
        return ConfigError(
            f"{self.filename}:{line.number}: {reason}: {line.stripped!r}"
        )
