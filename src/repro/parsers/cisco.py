"""Cisco IOS configuration parser.

Parses the IOS feature subset Campion models (Table 1) into the
vendor-independent :class:`~repro.model.device.DeviceConfig`:

* interfaces (``interface`` blocks with addresses, ACL bindings, OSPF
  interface attributes, shutdown),
* static routes (``ip route``),
* prefix lists (``ip prefix-list``, with ``ge``/``le``),
* community lists (``ip community-list standard|expanded``),
* as-path access lists (``ip as-path access-list``),
* numbered and named extended ACLs (``access-list N`` /
  ``ip access-list extended NAME``),
* route maps (``route-map`` stanzas with ``match``/``set``),
* BGP (``router bgp`` with neighbors, reflector clients, send-community,
  redistribution, ``distance bgp``),
* OSPF (``router ospf`` with ``network ... area``, passive interfaces,
  redistribution, reference bandwidth, ``distance``).

Unsupported lines produce :class:`~repro.parsers.common.ParserWarning`
records instead of failures — mirroring how Campion degrades on IOS
variants it does not fully support (§5.1, the fifth BGP bug).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..model import (
    Acl,
    AclAction,
    AclLine,
    Action,
    AsPathList,
    AsPathListEntry,
    BgpNeighbor,
    BgpProcess,
    Community,
    CommunityList,
    CommunityListEntry,
    DeviceConfig,
    Interface,
    IpWildcard,
    MatchAsPath,
    MatchCommunities,
    MatchPrefixList,
    MatchTag,
    OspfInterfaceSettings,
    OspfProcess,
    OspfRedistribution,
    PortRange,
    Prefix,
    PrefixList,
    PrefixListEntry,
    PrefixRange,
    Redistribution,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetTag,
    SourceSpan,
    StaticRoute,
    ip_to_int,
)
from .. import perf
from ..model.acl import IP_PROTOCOL_NUMBERS
from ..model.types import ConfigError
from .common import NumberedLine, ParseContext, number_lines

__all__ = ["parse_cisco"]


def parse_cisco(
    text: str, filename: str = "<cisco-config>", strict: bool = False
) -> DeviceConfig:
    """Parse a Cisco IOS configuration into a DeviceConfig.

    In the default lenient mode an unparseable stanza is recorded as an
    error-severity :class:`~repro.diagnostics.Diagnostic` (with line
    provenance) on the returned device and skipped; ``strict=True``
    restores fail-fast :class:`ConfigError` behavior.
    """
    with perf.timer("parse.cisco"):
        parser = _CiscoParser(text, filename, strict=strict)
        device = parser.parse()
    perf.add("parse.cisco.lines", len(parser.lines))
    with perf.timer("parse.fingerprint"):
        device.fingerprints  # computed at parse time, cached on the model
    return device


class _CiscoParser:
    def __init__(self, text: str, filename: str, strict: bool = False):
        self.lines = number_lines(text)
        self.context = ParseContext(filename, strict=strict)
        self.device = DeviceConfig(
            hostname="cisco-router", vendor="cisco", filename=filename
        )
        self.device.raw_lines = tuple(line.text for line in self.lines)
        # Collected during the pass, assembled at the end.
        self._prefix_entries: Dict[str, List[PrefixListEntry]] = {}
        self._community_entries: Dict[str, List[CommunityListEntry]] = {}
        self._as_path_entries: Dict[str, List[AsPathListEntry]] = {}
        self._acl_lines: Dict[str, List[AclLine]] = {}
        self._route_map_clauses: Dict[str, List[Tuple[int, RouteMapClause]]] = {}
        self._bgp: Optional[Dict] = None
        self._ospf: Optional[Dict] = None
        self._ospf_networks: List[Tuple[IpWildcard, int]] = []
        self._interface_ospf: Dict[str, Dict] = {}

    @property
    def warnings(self):
        return self.context.warnings

    # -- main loop ---------------------------------------------------------
    def parse(self) -> DeviceConfig:
        index = 0
        while index < len(self.lines):
            line = self.lines[index]
            stripped = line.stripped
            if not stripped or stripped.startswith("!"):
                index += 1
                continue
            tokens = line.tokens()
            head = tokens[0]
            try:
                if head == "hostname" and len(tokens) >= 2:
                    self.device.hostname = tokens[1]
                    index += 1
                elif head == "interface":
                    index = self._parse_interface(index)
                elif stripped.startswith("ip route "):
                    self._parse_static_route(line)
                    index += 1
                elif stripped.startswith("ip prefix-list "):
                    self._parse_prefix_list(line)
                    index += 1
                elif stripped.startswith("ip community-list "):
                    self._parse_community_list(line)
                    index += 1
                elif stripped.startswith("ip as-path access-list "):
                    self._parse_as_path_list(line)
                    index += 1
                elif head == "access-list":
                    self._parse_numbered_acl_line(line)
                    index += 1
                elif stripped.startswith("ip access-list extended "):
                    index = self._parse_named_acl(index)
                elif head == "route-map":
                    index = self._parse_route_map(index)
                elif stripped.startswith("router bgp "):
                    index = self._parse_bgp(index)
                elif stripped.startswith("router ospf "):
                    index = self._parse_ospf(index)
                else:
                    self.context.warn(line, "unsupported top-level statement")
                    index += 1
            except (ConfigError, ValueError, IndexError, KeyError) as exc:
                # A stanza Campion models but could not parse: record it
                # (raising in strict mode) and skip the whole block so a
                # bad header does not shower its body in bogus warnings.
                message = str(exc)
                location = f"{self.context.filename}:{line.number}: "
                if message.startswith(location):
                    message = message[len(location) :]
                self.context.error(line, f"parse error: {message}")
                index = max(index + 1, self._block_end(index))
        return self._assemble()

    def _block_end(self, start: int) -> int:
        """First index after ``start`` whose line leaves the block.

        IOS blocks end at a ``!`` separator or the next non-indented,
        non-continuation statement.
        """
        index = start + 1
        while index < len(self.lines):
            line = self.lines[index]
            stripped = line.stripped
            if stripped.startswith("!"):
                return index
            if stripped and line.indent == 0:
                return index
            index += 1
        return index

    # -- interfaces --------------------------------------------------------------
    def _parse_interface(self, start: int) -> int:
        header = self.lines[start]
        tokens = header.tokens()
        if len(tokens) < 2:
            raise self.context.fail(header, "interface needs a name")
        name = tokens[1]
        end = self._block_end(start)
        address: Optional[Prefix] = None
        description = ""
        shutdown = False
        acl_in: Optional[str] = None
        acl_out: Optional[str] = None
        ospf: Dict = {}
        for line in self.lines[start + 1 : end]:
            words = line.tokens()
            if not words:
                continue
            if words[:2] == ["ip", "address"] and len(words) >= 4:
                address = Prefix.from_address_mask(words[2], words[3])
                # Interface addresses keep their host bits for display but
                # the model needs the host address; store as Prefix of the
                # subnet with the host address embedded via a /32-aware
                # Prefix (subnet prefix used for connected routes).
                host = ip_to_int(words[2])
                mask_len = address.length
                address = _InterfacePrefix(host, mask_len)
            elif words[0] == "description":
                description = " ".join(words[1:])
            elif words[0] == "shutdown":
                shutdown = True
            elif words[:2] == ["ip", "access-group"] and len(words) >= 4:
                if words[3] == "in":
                    acl_in = words[2]
                elif words[3] == "out":
                    acl_out = words[2]
            elif words[:2] == ["ip", "ospf"] and len(words) >= 4:
                if words[2] == "cost":
                    ospf["cost"] = int(words[3])
                elif words[2] == "hello-interval":
                    ospf["hello_interval"] = int(words[3])
                elif words[2] == "dead-interval":
                    ospf["dead_interval"] = int(words[3])
                elif words[2] == "network" and len(words) >= 4:
                    ospf["network_type"] = words[3]
                else:
                    self.context.warn(line, "unsupported ip ospf attribute")
            else:
                self.context.warn(line, "unsupported interface statement")
        span = SourceSpan.from_lines(
            self.context.filename,
            [(l.number, l.text.rstrip()) for l in self.lines[start:end]],
        )
        self.device.interfaces[name] = Interface(
            name=name,
            address=address,
            description=description,
            shutdown=shutdown,
            acl_in=acl_in,
            acl_out=acl_out,
            source=span,
        )
        if ospf:
            self._interface_ospf[name] = ospf
        return end

    # -- static routes ----------------------------------------------------------------
    def _parse_static_route(self, line: NumberedLine) -> None:
        tokens = line.tokens()
        # ip route <addr> <mask> (<next-hop>|<interface>) [distance] [tag N] [name X]
        if len(tokens) < 5:
            raise self.context.fail(line, "ip route needs address, mask, target")
        prefix = Prefix.from_address_mask(tokens[2], tokens[3])
        target = tokens[4]
        next_hop: Optional[int] = None
        interface: Optional[str] = None
        try:
            next_hop = ip_to_int(target)
        except ConfigError:
            # Normalize drop interfaces so Cisco Null0 and JunOS discard
            # compare equal (they denote the same behavior).
            interface = "discard" if target.lower().startswith("null") else target
        distance = 1
        tag: Optional[int] = None
        rest = tokens[5:]
        position = 0
        while position < len(rest):
            word = rest[position]
            if word == "tag" and position + 1 < len(rest):
                tag = int(rest[position + 1])
                position += 2
            elif word == "name" and position + 1 < len(rest):
                position += 2
            elif word.isdigit():
                distance = int(word)
                position += 1
            else:
                self.context.warn(line, f"unsupported ip route option {word!r}")
                position += 1
        self.device.static_routes.append(
            StaticRoute(
                prefix=prefix,
                next_hop=next_hop,
                interface=interface,
                admin_distance=distance,
                tag=tag,
                source=line.span(self.context.filename),
            )
        )

    # -- prefix lists -------------------------------------------------------------------
    def _parse_prefix_list(self, line: NumberedLine) -> None:
        tokens = line.tokens()
        # ip prefix-list NAME [seq N] permit|deny P/L [ge X] [le Y]
        position = 2
        name = tokens[position]
        position += 1
        if position < len(tokens) and tokens[position] == "seq":
            position += 2
        if position >= len(tokens) or tokens[position] not in ("permit", "deny"):
            raise self.context.fail(line, "prefix-list needs permit/deny")
        action = Action.PERMIT if tokens[position] == "permit" else Action.DENY
        position += 1
        prefix = Prefix.parse(tokens[position])
        position += 1
        low = prefix.length
        high = prefix.length
        seen_ge = seen_le = False
        while position < len(tokens):
            word = tokens[position]
            if word == "ge" and position + 1 < len(tokens):
                low = int(tokens[position + 1])
                seen_ge = True
                position += 2
            elif word == "le" and position + 1 < len(tokens):
                high = int(tokens[position + 1])
                seen_le = True
                position += 2
            else:
                self.context.warn(line, f"unsupported prefix-list option {word!r}")
                position += 1
        if seen_ge and not seen_le:
            high = 32  # ge without le allows any longer length
        entry = PrefixListEntry(
            action=action,
            range=PrefixRange(prefix, low, high),
            source=line.span(self.context.filename),
        )
        self._prefix_entries.setdefault(name, []).append(entry)

    # -- community lists ----------------------------------------------------------------
    def _parse_community_list(self, line: NumberedLine) -> None:
        tokens = line.tokens()
        # ip community-list standard NAME permit c1 [c2 ...]
        # ip community-list expanded NAME permit <regex>
        kind = tokens[2]
        if kind in ("standard", "expanded"):
            name = tokens[3]
            action_word = tokens[4]
            payload = tokens[5:]
        else:  # numbered form: ip community-list 10 permit ...
            name = tokens[2]
            action_word = tokens[3]
            payload = tokens[4:]
            kind = "standard"
        if action_word not in ("permit", "deny"):
            raise self.context.fail(line, "community-list needs permit/deny")
        action = Action.PERMIT if action_word == "permit" else Action.DENY
        span = line.span(self.context.filename)
        if kind == "expanded":
            entry = CommunityListEntry(
                action=action, regex=" ".join(payload), source=span
            )
        else:
            members = frozenset(Community.parse(word) for word in payload)
            # One IOS standard entry with several communities is a
            # conjunction; separate entries disjoin (§2.1's subtle bug).
            entry = CommunityListEntry(action=action, communities=members, source=span)
        self._community_entries.setdefault(name, []).append(entry)

    # -- as-path lists -------------------------------------------------------------------
    def _parse_as_path_list(self, line: NumberedLine) -> None:
        tokens = line.tokens()
        # ip as-path access-list <N> permit|deny <regex>
        name = tokens[3]
        action_word = tokens[4]
        if action_word not in ("permit", "deny"):
            raise self.context.fail(line, "as-path access-list needs permit/deny")
        action = Action.PERMIT if action_word == "permit" else Action.DENY
        regex = " ".join(tokens[5:])
        self._as_path_entries.setdefault(name, []).append(
            AsPathListEntry(action=action, regex=regex, source=line.span(self.context.filename))
        )

    # -- ACLs --------------------------------------------------------------------------------
    def _parse_numbered_acl_line(self, line: NumberedLine) -> None:
        tokens = line.tokens()
        name = tokens[1]
        acl_line = self._parse_acl_rule(line, tokens[2:])
        if acl_line is not None:
            self._acl_lines.setdefault(name, []).append(acl_line)

    def _parse_named_acl(self, start: int) -> int:
        header = self.lines[start]
        name = header.tokens()[3]
        self._acl_lines.setdefault(name, [])  # empty ACLs still exist
        end = self._block_end(start)
        for line in self.lines[start + 1 : end]:
            tokens = line.tokens()
            if not tokens:
                continue
            # Optional sequence number prefix (IOS-XR style "2299 deny ...").
            if tokens[0].isdigit():
                tokens = tokens[1:]
            if not tokens or tokens[0] == "remark":
                continue
            acl_line = self._parse_acl_rule(line, tokens)
            if acl_line is not None:
                self._acl_lines.setdefault(name, []).append(acl_line)
        return end

    def _parse_acl_rule(
        self, line: NumberedLine, tokens: Sequence[str]
    ) -> Optional[AclLine]:
        """Parse ``permit|deny <proto> <src> [ports] <dst> [ports] [...]``."""
        if not tokens:
            return None
        if tokens[0] not in ("permit", "deny"):
            self.context.warn(line, "unsupported ACL rule")
            return None
        action = AclAction.PERMIT if tokens[0] == "permit" else AclAction.DENY
        position = 1
        protocol_word = tokens[position]
        position += 1
        protocol: Optional[int] = None
        if protocol_word in ("ip", "ipv4", "any"):
            protocol = None
        elif protocol_word in IP_PROTOCOL_NUMBERS:
            protocol = IP_PROTOCOL_NUMBERS[protocol_word]
        elif protocol_word.isdigit():
            protocol = int(protocol_word)
        else:
            self.context.warn(line, f"unsupported protocol {protocol_word!r}")
            return None

        src, position = self._parse_acl_address(tokens, position, line)
        src_ports, position = self._parse_acl_ports(tokens, position)
        dst, position = self._parse_acl_address(tokens, position, line)
        dst_ports, position = self._parse_acl_ports(tokens, position)

        icmp_type: Optional[int] = None
        rest = tokens[position:]
        if protocol == IP_PROTOCOL_NUMBERS["icmp"] and rest:
            icmp_names = {
                "echo": 8,
                "echo-reply": 0,
                "ttl-exceeded": 11,
                "unreachable": 3,
            }
            if rest[0] in icmp_names:
                icmp_type = icmp_names[rest[0]]
                rest = rest[1:]
            elif rest[0].isdigit():
                icmp_type = int(rest[0])
                rest = rest[1:]
        for word in rest:
            if word in ("log", "log-input", "established"):
                continue  # match-neutral or stateful options, out of scope
            self.context.warn(line, f"ignored ACL option {word!r}")

        return AclLine(
            action=action,
            src=src,
            dst=dst,
            protocol=protocol,
            src_ports=src_ports,
            dst_ports=dst_ports,
            icmp_type=icmp_type,
            source=line.span(self.context.filename),
        )

    def _parse_acl_address(
        self, tokens: Sequence[str], position: int, line: NumberedLine
    ) -> Tuple[IpWildcard, int]:
        if position >= len(tokens):
            return IpWildcard.any(), position
        word = tokens[position]
        if word == "any":
            return IpWildcard.any(), position + 1
        if word == "host":
            return IpWildcard.host(ip_to_int(tokens[position + 1])), position + 2
        address = ip_to_int(word)
        if position + 1 < len(tokens):
            try:
                wildcard = ip_to_int(tokens[position + 1])
                return IpWildcard(address, wildcard), position + 2
            except ConfigError:
                pass
        return IpWildcard.host(address), position + 1

    def _parse_acl_ports(
        self, tokens: Sequence[str], position: int
    ) -> Tuple[Tuple[PortRange, ...], int]:
        if position >= len(tokens):
            return (), position
        word = tokens[position]
        if word == "eq":
            port = _port_number(tokens[position + 1])
            return (PortRange.single(port),), position + 2
        if word == "range":
            low = _port_number(tokens[position + 1])
            high = _port_number(tokens[position + 2])
            return (PortRange(low, high),), position + 3
        if word == "gt":
            port = _port_number(tokens[position + 1])
            return (PortRange(port + 1, 0xFFFF),), position + 2
        if word == "lt":
            port = _port_number(tokens[position + 1])
            return (PortRange(0, port - 1),), position + 2
        if word == "neq":
            port = _port_number(tokens[position + 1])
            ranges = []
            if port > 0:
                ranges.append(PortRange(0, port - 1))
            if port < 0xFFFF:
                ranges.append(PortRange(port + 1, 0xFFFF))
            return tuple(ranges), position + 2
        return (), position

    # -- route maps ------------------------------------------------------------------------------
    def _parse_route_map(self, start: int) -> int:
        header = self.lines[start]
        tokens = header.tokens()
        # route-map NAME permit|deny SEQ
        if len(tokens) < 4 or tokens[2] not in ("permit", "deny"):
            raise self.context.fail(header, "route-map needs action and sequence")
        name = tokens[1]
        action = Action.PERMIT if tokens[2] == "permit" else Action.DENY
        sequence = int(tokens[3])
        end = self._block_end(start)

        matches = []
        sets = []
        for line in self.lines[start + 1 : end]:
            words = line.tokens()
            if not words:
                continue
            span = line.span(self.context.filename)
            if words[0] == "match":
                condition = self._parse_match(words, span, line)
                if condition is not None:
                    matches.append(condition)
            elif words[0] == "set":
                set_action = self._parse_set(words, span, line)
                if set_action is not None:
                    sets.append(set_action)
            elif words[0] == "description":
                continue
            else:
                self.context.warn(line, "unsupported route-map statement")

        span = SourceSpan.from_lines(
            self.context.filename,
            [(l.number, l.text.rstrip()) for l in self.lines[start:end]],
        )
        clause = RouteMapClause(
            name=f"route-map {name} {tokens[2]} {sequence}",
            action=action,
            matches=tuple(matches),
            sets=tuple(sets),
            source=span,
        )
        self._route_map_clauses.setdefault(name, []).append((sequence, clause))
        return end

    def _parse_match(self, words, span, line):
        if words[1:3] == ["ip", "address"]:
            # "match ip address prefix-list NAME" or "match ip address NAME";
            # both forms resolve against prefix lists at assembly time.
            name = words[4] if len(words) > 4 and words[3] == "prefix-list" else words[3]
            return _PendingPrefixMatch(name, span)
        if words[1] == "community":
            return _PendingCommunityMatch(words[2], span)
        if words[1] == "as-path":
            return _PendingAsPathMatch(words[2], span)
        if words[1] == "tag":
            return MatchTag(int(words[2]), span)
        self.context.warn(line, "unsupported match condition")
        return None

    def _parse_set(self, words, span, line):
        if words[1] == "local-preference":
            return SetLocalPref(int(words[2]), span)
        if words[1] == "metric":
            return SetMed(int(words[2]), span)
        if words[1] == "community":
            additive = words[-1] == "additive"
            payload = words[2:-1] if additive else words[2:]
            communities = frozenset(Community.parse(word) for word in payload)
            return SetCommunities(communities, additive, span)
        if words[1:3] == ["ip", "next-hop"]:
            return SetNextHop(ip_to_int(words[3]), span)
        if words[1:3] == ["as-path", "prepend"]:
            return SetAsPathPrepend(tuple(int(word) for word in words[3:]), span)
        if words[1] == "tag":
            return SetTag(int(words[2]), span)
        self.context.warn(line, "unsupported set action")
        return None

    # -- BGP -----------------------------------------------------------------------------------------
    def _parse_bgp(self, start: int) -> int:
        header = self.lines[start]
        asn = int(header.tokens()[2])
        end = self._block_end(start)
        neighbors: Dict[int, Dict] = {}
        neighbor_spans: Dict[int, List[Tuple[int, str]]] = {}
        redistributions: List[Redistribution] = []
        router_id: Optional[int] = None
        default_local_pref = 100
        for line in self.lines[start + 1 : end]:
            words = line.tokens()
            if not words:
                continue
            if words[0] == "neighbor" and len(words) >= 3:
                try:
                    peer = ip_to_int(words[1])
                except ConfigError:
                    self.context.warn(line, "peer-group neighbors unsupported")
                    continue
                settings = neighbors.setdefault(peer, {})
                neighbor_spans.setdefault(peer, []).append(
                    (line.number, line.text.rstrip())
                )
                keyword = words[2]
                if keyword == "remote-as":
                    settings["remote_as"] = int(words[3])
                elif keyword == "description":
                    settings["description"] = " ".join(words[3:])
                elif keyword == "route-map" and len(words) >= 5:
                    if words[4] == "in":
                        settings["import_policy"] = words[3]
                    elif words[4] == "out":
                        settings["export_policy"] = words[3]
                elif keyword == "route-reflector-client":
                    settings["route_reflector_client"] = True
                elif keyword == "send-community":
                    settings["send_community"] = True
                elif keyword == "next-hop-self":
                    settings["next_hop_self"] = True
                elif keyword == "update-source":
                    settings["update_source"] = words[3]
                elif keyword == "ebgp-multihop":
                    settings["ebgp_multihop"] = True
                elif keyword == "activate":
                    pass  # address-family activation: match-neutral here
                else:
                    self.context.warn(line, f"unsupported neighbor option {keyword!r}")
            elif words[0] == "redistribute":
                route_map = None
                metric = None
                if "route-map" in words:
                    route_map = words[words.index("route-map") + 1]
                if "metric" in words:
                    metric = int(words[words.index("metric") + 1])
                redistributions.append(
                    Redistribution(
                        from_protocol=words[1],
                        route_map=route_map,
                        metric=metric,
                        source=line.span(self.context.filename),
                    )
                )
            elif words[:2] == ["bgp", "router-id"]:
                router_id = ip_to_int(words[2])
            elif words[:3] == ["bgp", "default", "local-preference"]:
                default_local_pref = int(words[3])
            elif words[0] == "distance" and words[1] == "bgp" and len(words) >= 4:
                self.device.admin_distances["ebgp"] = int(words[2])
                self.device.admin_distances["ibgp"] = int(words[3])
            elif words[:2] == ["address-family", "ipv4"] or words[0] in (
                "exit-address-family",
            ):
                continue  # flat v4 configs only; the subcommands parse the same
            else:
                self.context.warn(line, "unsupported bgp statement")

        bgp_span = SourceSpan.from_lines(
            self.context.filename,
            [(l.number, l.text.rstrip()) for l in self.lines[start:end]],
        )
        built = []
        for peer, settings in sorted(neighbors.items()):
            span = SourceSpan.from_lines(self.context.filename, neighbor_spans[peer])
            built.append(
                BgpNeighbor(
                    peer_ip=peer,
                    remote_as=settings.get("remote_as", 0),
                    description=settings.get("description", ""),
                    import_policy=settings.get("import_policy"),
                    export_policy=settings.get("export_policy"),
                    route_reflector_client=settings.get("route_reflector_client", False),
                    send_community=settings.get("send_community", False),
                    next_hop_self=settings.get("next_hop_self", False),
                    update_source=settings.get("update_source"),
                    ebgp_multihop=settings.get("ebgp_multihop", False),
                    source=span,
                )
            )
        self.device.bgp = BgpProcess(
            asn=asn,
            router_id=router_id,
            neighbors=tuple(built),
            redistributions=tuple(redistributions),
            default_local_pref=default_local_pref,
            source=bgp_span,
        )
        return end

    # -- OSPF -----------------------------------------------------------------------------------------
    def _parse_ospf(self, start: int) -> int:
        header = self.lines[start]
        process_id = header.tokens()[2]
        end = self._block_end(start)
        router_id: Optional[int] = None
        reference_bandwidth = 100_000_000
        passive: List[str] = []
        redistributions: List[OspfRedistribution] = []
        for line in self.lines[start + 1 : end]:
            words = line.tokens()
            if not words:
                continue
            if words[0] == "router-id":
                router_id = ip_to_int(words[1])
            elif words[0] == "network" and len(words) >= 5 and words[3] == "area":
                wildcard = IpWildcard(ip_to_int(words[1]), ip_to_int(words[2]))
                self._ospf_networks.append((wildcard, _area_number(words[4])))
            elif words[0] == "passive-interface":
                passive.append(words[1])
            elif words[0] == "redistribute":
                route_map = None
                metric = None
                metric_type = 2
                if "route-map" in words:
                    route_map = words[words.index("route-map") + 1]
                if "metric" in words:
                    metric = int(words[words.index("metric") + 1])
                if "metric-type" in words:
                    metric_type = int(words[words.index("metric-type") + 1])
                redistributions.append(
                    OspfRedistribution(
                        from_protocol=words[1],
                        route_map=route_map,
                        metric=metric,
                        metric_type=metric_type,
                        source=line.span(self.context.filename),
                    )
                )
            elif words[:2] == ["auto-cost", "reference-bandwidth"]:
                reference_bandwidth = int(words[2]) * 1_000_000  # IOS takes Mbps
            elif words[0] == "distance" and len(words) >= 2 and words[1].isdigit():
                self.device.admin_distances["ospf"] = int(words[1])
            else:
                self.context.warn(line, "unsupported ospf statement")
        span = SourceSpan.from_lines(
            self.context.filename,
            [(l.number, l.text.rstrip()) for l in self.lines[start:end]],
        )
        self._ospf = {
            "process_id": process_id,
            "router_id": router_id,
            "reference_bandwidth": reference_bandwidth,
            "passive": passive,
            "redistributions": redistributions,
            "span": span,
        }
        return end

    # -- assembly -----------------------------------------------------------------------------------------
    def _assemble(self) -> DeviceConfig:
        device = self.device
        for name, entries in self._prefix_entries.items():
            device.prefix_lists[name] = PrefixList(name, tuple(entries))
        for name, entries in self._community_entries.items():
            device.community_lists[name] = CommunityList(name, tuple(entries))
        for name, entries in self._as_path_entries.items():
            device.as_path_lists[name] = AsPathList(name, tuple(entries))
        for name, lines in self._acl_lines.items():
            span = lines[0].source if lines else SourceSpan()
            for acl_line in lines[1:]:
                span = span.merge(acl_line.source)
            device.acls[name] = Acl(name=name, lines=tuple(lines), source=span)

        for name, numbered in self._route_map_clauses.items():
            numbered.sort(key=lambda pair: pair[0])
            clauses = tuple(
                self._resolve_clause(clause) for _, clause in numbered
            )
            span = clauses[0].source
            for clause in clauses[1:]:
                span = span.merge(clause.source)
            device.route_maps[name] = RouteMap(
                name=name,
                clauses=clauses,
                default_action=Action.DENY,  # IOS implicit deny
                source=span,
            )

        self._assemble_ospf()
        device.diagnostics = tuple(self.context.diagnostics)
        return device

    def _resolve_clause(self, clause: RouteMapClause) -> RouteMapClause:
        """Replace pending named references with the parsed lists."""
        resolved = []
        for condition in clause.matches:
            if isinstance(condition, _PendingPrefixMatch):
                prefix_list = self.device.prefix_lists.get(
                    condition.name
                ) or PrefixList(condition.name, ())
                if condition.name not in self._prefix_entries:
                    self.context.warnings.append(
                        _undefined_warning(condition.name, "prefix-list")
                    )
                resolved.append(MatchPrefixList(prefix_list, condition.span))
            elif isinstance(condition, _PendingCommunityMatch):
                community_list = self.device.community_lists.get(
                    condition.name
                ) or CommunityList(condition.name, ())
                resolved.append(MatchCommunities(community_list, condition.span))
            elif isinstance(condition, _PendingAsPathMatch):
                as_path_list = self.device.as_path_lists.get(
                    condition.name
                ) or AsPathList(condition.name, ())
                resolved.append(MatchAsPath(as_path_list, condition.span))
            else:
                resolved.append(condition)
        return RouteMapClause(
            name=clause.name,
            action=clause.action,
            matches=tuple(resolved),
            sets=clause.sets,
            source=clause.source,
        )

    def _assemble_ospf(self) -> None:
        if self._ospf is None:
            return
        settings_list = []
        passive = set(self._ospf["passive"])
        for name, interface in self.device.interfaces.items():
            if interface.address is None:
                continue
            area = self._ospf_area_for(interface)
            if area is None and name not in self._interface_ospf:
                continue
            extras = self._interface_ospf.get(name, {})
            settings_list.append(
                OspfInterfaceSettings(
                    interface=name,
                    area=area if area is not None else 0,
                    cost=extras.get("cost"),
                    passive=name in passive,
                    hello_interval=extras.get("hello_interval", 10),
                    dead_interval=extras.get("dead_interval", 40),
                    network_type=extras.get("network_type", "broadcast"),
                    source=interface.source,
                )
            )
        self.device.ospf = OspfProcess(
            process_id=self._ospf["process_id"],
            router_id=self._ospf["router_id"],
            interfaces=tuple(settings_list),
            redistributions=tuple(self._ospf["redistributions"]),
            reference_bandwidth=self._ospf["reference_bandwidth"],
            source=self._ospf["span"],
        )

    def _ospf_area_for(self, interface: Interface) -> Optional[int]:
        """Match an interface address against ``network ... area`` lines."""
        if interface.address is None:
            return None
        host = interface.address.network
        for wildcard, area in self._ospf_networks:
            if wildcard.matches(host):
                return area
        return None


class _InterfacePrefix(Prefix):
    """A Prefix that keeps the host address (interface ``ip address``).

    ``Prefix`` canonicalizes by masking host bits; interface addresses
    must retain them (two backup routers on one subnet have different
    host addresses but the same connected route).  Only the subnet view
    (via ``Interface.subnet()``) masks.
    """

    def __post_init__(self) -> None:  # skip canonicalization, keep checks
        if not 0 <= self.length <= 32:
            raise ConfigError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= 0xFFFFFFFF:
            raise ConfigError(f"prefix network out of range: {self.network}")


class _PendingPrefixMatch:
    def __init__(self, name: str, span: SourceSpan):
        self.name = name
        self.span = span


class _PendingCommunityMatch:
    def __init__(self, name: str, span: SourceSpan):
        self.name = name
        self.span = span


class _PendingAsPathMatch:
    def __init__(self, name: str, span: SourceSpan):
        self.name = name
        self.span = span


def _undefined_warning(name: str, kind: str):
    from .common import ParserWarning

    return ParserWarning(0, name, f"undefined {kind}")


def _port_number(word: str) -> int:
    named = {
        "bgp": 179,
        "domain": 53,
        "ftp": 21,
        "http": 80,
        "www": 80,
        "https": 443,
        "ntp": 123,
        "smtp": 25,
        "snmp": 161,
        "ssh": 22,
        "syslog": 514,
        "telnet": 23,
        "tftp": 69,
    }
    if word in named:
        return named[word]
    return int(word)


def _area_number(word: str) -> int:
    """Areas appear as integers or dotted quads."""
    if "." in word:
        return ip_to_int(word)
    return int(word)
