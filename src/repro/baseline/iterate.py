"""Iterated counterexamples — the §2.1 Minesweeper extension.

The paper modifies Minesweeper to return *multiple* counterexamples by
re-querying with blocking constraints on previous models, and measures
how many are needed before the operator has seen at least one witness
per relevant prefix range (7 for Figure 1; 27 after changing the second
Cisco prefix-list line from ``le 32`` to ``le 31``).

We reproduce that loop: the difference relation is one monolithic BDD,
each iteration samples a model (uniformly — emulating the varied models
an SMT solver returns; lexicographic enumeration would crawl through
adjacent addresses forever), blocks it, and repeats.  Coverage is
assessed against a caller-supplied list of target sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..bdd import Bdd, blocking_clause
from ..encoding import RouteExample, RouteSpace
from ..model.routemap import RouteMap
from .monolithic import route_map_difference_set

__all__ = ["IterationResult", "iterate_route_map_counterexamples", "count_to_cover"]


@dataclass
class IterationResult:
    """The sequence of counterexamples produced by the blocking loop."""

    examples: List[RouteExample] = field(default_factory=list)
    exhausted: bool = False  # difference set fully enumerated before cover

    def __len__(self) -> int:
        return len(self.examples)


def iterate_route_map_counterexamples(
    map1: RouteMap,
    map2: RouteMap,
    stop: Callable[[List[RouteExample]], bool],
    max_iterations: int = 10_000,
    seed: int = 0,
    space: Optional[RouteSpace] = None,
    block_mode: str = "point",
) -> IterationResult:
    """Run the §2.1 blocking loop until ``stop(examples)`` or exhaustion.

    ``stop`` receives the examples produced so far after each iteration
    and returns True when the operator's goal (e.g. one witness per
    relevant prefix range) is met.

    ``block_mode`` chooses how much each blocking constraint removes:
    ``"point"`` excludes only the concrete model (the paper's setup —
    "constraints that disallow previously generated counterexamples"),
    while ``"cube"`` excludes the whole BDD path the model came from,
    emulating a solver that generalizes counterexamples; coverage then
    converges in a handful of iterations.
    """
    if block_mode not in ("point", "cube"):
        raise ValueError(f"unknown block_mode {block_mode!r}")
    if space is None:
        space = RouteSpace([map1, map2])
    manager = space.manager
    pieces = route_map_difference_set(space, map1, map2)
    difference = manager.disjoin(piece for piece, _, _ in pieces)
    rng = random.Random(seed)

    result = IterationResult()
    remaining = difference
    all_vars = list(range(manager.num_vars))
    for _ in range(max_iterations):
        if remaining.is_false():
            result.exhausted = True
            return result
        cube = manager.random_cube(remaining, rng)
        assert cube is not None
        model = dict(cube)
        for index in all_vars:
            if index not in model:
                model[index] = bool(rng.getrandbits(1))
        result.examples.append(space.decode(model))
        if stop(result.examples):
            return result
        if block_mode == "cube":
            remaining = remaining & blocking_clause(manager, model, sorted(cube))
        else:
            remaining = remaining & blocking_clause(manager, model, all_vars)
    return result


def count_to_cover(
    map1: RouteMap,
    map2: RouteMap,
    targets: Sequence[Bdd],
    space: RouteSpace,
    seed: int = 0,
    max_iterations: int = 10_000,
    block_mode: str = "point",
) -> Optional[int]:
    """Counterexamples needed until every target set has a witness.

    ``targets`` are BDDs over ``space`` (e.g. the prefix ranges relevant
    to Difference 1).  Returns the iteration count, or None when the
    difference set was exhausted or the bound hit first.
    """
    hits = [False] * len(targets)

    def stop(examples: List[RouteExample]) -> bool:
        example = examples[-1]
        point = space.exact_prefix_pred(example.prefix)
        for index, target in enumerate(targets):
            if not hits[index] and point.intersects(target):
                hits[index] = True
        return all(hits)

    result = iterate_route_map_counterexamples(
        map1,
        map2,
        stop,
        max_iterations=max_iterations,
        seed=seed,
        space=space,
        block_mode=block_mode,
    )
    if result.exhausted or len(result) >= max_iterations and not all(hits):
        return None
    return len(result) if all(hits) else None
