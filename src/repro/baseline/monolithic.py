"""A Minesweeper-style monolithic equivalence checker (§2 baseline).

Minesweeper builds one logical representation of each router's whole
behavior and asks an SMT solver for a single counterexample.  This module
reproduces that *interface* over our BDD engine: each component pair is
composed into one difference relation, and the checker reports exactly
one concrete witness — no header localization, no text localization, no
enumeration of distinct differences.  Tables 3 and 5 are renderings of
these results; the §2 comparison benchmarks contrast them with Campion's
output on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd import Bdd, BddManager, complete_model
from ..encoding import (
    PacketSpace,
    RouteExample,
    RouteSpace,
    acl_equivalence_classes,
    route_map_equivalence_classes,
)
from ..model.acl import Acl, AclAction
from ..model.device import DeviceConfig
from ..model.routemap import RouteMap
from ..model.types import Prefix, int_to_ip

__all__ = [
    "RouteMapCounterexample",
    "StaticRouteCounterexample",
    "AclCounterexample",
    "monolithic_route_map_check",
    "monolithic_static_route_check",
    "monolithic_acl_check",
    "route_map_difference_set",
]


@dataclass(frozen=True)
class RouteMapCounterexample:
    """Minesweeper-style output: one route treated differently (Table 3)."""

    route: RouteExample
    action1: str
    action2: str
    router1: str
    router2: str

    def render(self) -> str:
        """Render the Table 3 style output block."""
        lines = [
            f"Route received ({self.router1}) | Prefix: {self.route.prefix}",
            f"Route received ({self.router2}) | Prefix: {self.route.prefix}",
        ]
        if self.route.communities:
            communities = " ".join(sorted(str(c) for c in self.route.communities))
            lines.append(f"Communities                  | {communities}")
        packet_ip = int_to_ip(self.route.prefix.network)
        lines.append(f"Packet                       | dstIp: {packet_ip}")
        forwards1 = "ACCEPT" in self.action1
        forwards2 = "ACCEPT" in self.action2
        if forwards1 != forwards2:
            forwarder = self.router1 if forwards1 else self.router2
            dropper = self.router2 if forwards1 else self.router1
            lines.append(
                f"Forwarding                   | {forwarder} forwards (BGP); "
                f"{dropper} does not forward"
            )
        else:
            lines.append(
                f"Forwarding                   | both forward, different attributes "
                f"({self.action1!r} vs {self.action2!r})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class StaticRouteCounterexample:
    """One packet whose static forwarding differs (Table 5)."""

    dst_ip: int
    forwards1: bool
    forwards2: bool
    next_hop1: Optional[int]
    next_hop2: Optional[int]
    router1: str
    router2: str

    def render(self) -> str:
        """Render the Table 5 style output block."""
        lines = [f"Packet     | dstIp: {int_to_ip(self.dst_ip)}"]
        if self.forwards1 != self.forwards2:
            forwarder = self.router1 if self.forwards1 else self.router2
            dropper = self.router2 if self.forwards1 else self.router1
            lines.append(
                f"Forwarding | {forwarder} forwards (static); {dropper} does not forward"
            )
        else:
            hop1 = int_to_ip(self.next_hop1) if self.next_hop1 is not None else "?"
            hop2 = int_to_ip(self.next_hop2) if self.next_hop2 is not None else "?"
            lines.append(
                f"Forwarding | both forward (static) but to different next hops: "
                f"{hop1} vs {hop2}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class AclCounterexample:
    """One packet accepted by one ACL and rejected by the other."""

    packet: Dict[str, str]
    action1: str
    action2: str
    router1: str
    router2: str

    def render(self) -> str:
        """Render the packet and both filters' verdicts."""
        fields = ", ".join(f"{key}: {value}" for key, value in self.packet.items())
        return (
            f"Packet     | {fields}\n"
            f"Filtering  | {self.router1}: {self.action1}; {self.router2}: {self.action2}"
        )


# ---------------------------------------------------------------------------
# Route maps
# ---------------------------------------------------------------------------


def route_map_difference_set(
    space: RouteSpace, map1: RouteMap, map2: RouteMap
) -> List[Tuple[Bdd, str, str]]:
    """The monolithic difference relation, kept as (set, action1, action2)
    pieces so a single model can name both actions.

    The union of the sets is the full "behaviors differ" predicate — the
    monolithic checker's single query object.
    """
    classes1 = route_map_equivalence_classes(space, map1)
    classes2 = route_map_equivalence_classes(space, map2)
    pieces: List[Tuple[Bdd, str, str]] = []
    for class1 in classes1:
        for class2 in classes2:
            if class1.action == class2.action:
                continue
            overlap = class1.predicate & class2.predicate
            if overlap:
                pieces.append(
                    (overlap, class1.action.describe(), class2.action.describe())
                )
    return pieces


def monolithic_route_map_check(
    map1: RouteMap,
    map2: RouteMap,
    router1: str = "router1",
    router2: str = "router2",
    space: Optional[RouteSpace] = None,
) -> Optional[RouteMapCounterexample]:
    """One counterexample to route-map equivalence, or None if equivalent.

    Mirrors the adapted Minesweeper of §2.1: a single query, a single
    concrete route, no information about other differences.
    """
    if space is None:
        space = RouteSpace([map1, map2])
    pieces = route_map_difference_set(space, map1, map2)
    if not pieces:
        return None
    # Deterministic: first piece in class order, lexicographically-least
    # model — the analogue of a solver's arbitrary-but-fixed model choice.
    overlap, action1, action2 = pieces[0]
    model = complete_model(overlap, space.manager.num_vars)
    assert model is not None  # pieces only contain non-empty sets
    return RouteMapCounterexample(
        route=space.decode(model),
        action1=action1,
        action2=action2,
        router1=router1,
        router2=router2,
    )


# ---------------------------------------------------------------------------
# Static routes
# ---------------------------------------------------------------------------


def monolithic_static_route_check(
    device1: DeviceConfig, device2: DeviceConfig
) -> Optional[StaticRouteCounterexample]:
    """One packet whose static-route forwarding differs (Table 5).

    Builds each device's "forwarded by some static route" dstIp set; a
    witness is drawn from the symmetric difference, or — if coverage is
    equal — from addresses forwarded to different next hops under
    longest-prefix match.
    """
    manager = BddManager()
    from ..bdd import BitVector

    dst_ip = BitVector.allocate(manager, "dstIp", 32)

    def coverage(device: DeviceConfig) -> Bdd:
        return manager.disjoin(
            dst_ip.prefix_match(route.prefix.network, route.prefix.length)
            for route in device.static_routes
        )

    covered1 = coverage(device1)
    covered2 = coverage(device2)
    asymmetric = (covered1 - covered2) | (covered2 - covered1)
    if asymmetric:
        model = complete_model(asymmetric, manager.num_vars)
        assert model is not None
        address = dst_ip.value_of(model)
        forwards1 = any(
            route.prefix.contains_address(address) for route in device1.static_routes
        )
        return StaticRouteCounterexample(
            dst_ip=address,
            forwards1=forwards1,
            forwards2=not forwards1,
            next_hop1=_static_next_hop(device1, address),
            next_hop2=_static_next_hop(device2, address),
            router1=device1.hostname,
            router2=device2.hostname,
        )

    # Same coverage: look for next-hop disagreement under longest-prefix
    # match.  Each device's static table partitions its covered space
    # into LPM cells (a route's prefix minus all strictly longer covering
    # prefixes); cells from the two devices that overlap with different
    # next hops witness a forwarding difference.
    def lpm_cells(device: DeviceConfig):
        prefixes = sorted(
            {route.prefix for route in device.static_routes},
            key=lambda p: -p.length,
        )
        cells = []
        for prefix in prefixes:
            cell = dst_ip.prefix_match(prefix.network, prefix.length)
            for longer in prefixes:
                if longer.length > prefix.length and prefix.contains_prefix(longer):
                    cell = cell - dst_ip.prefix_match(longer.network, longer.length)
            hops = frozenset(
                route.next_hop
                for route in device.static_routes
                if route.prefix == prefix
            )
            cells.append((cell, hops))
        return cells

    for cell1, hops1 in lpm_cells(device1):
        for cell2, hops2 in lpm_cells(device2):
            if hops1 == hops2:
                continue
            model = complete_model(cell1 & cell2, manager.num_vars)
            if model is None:
                continue
            address = dst_ip.value_of(model)
            return StaticRouteCounterexample(
                dst_ip=address,
                forwards1=True,
                forwards2=True,
                next_hop1=_static_next_hop(device1, address),
                next_hop2=_static_next_hop(device2, address),
                router1=device1.hostname,
                router2=device2.hostname,
            )
    return None


def _static_next_hop(device: DeviceConfig, address: int) -> Optional[int]:
    """Longest-prefix-match next hop among the device's static routes."""
    best = None
    best_length = -1
    for route in device.static_routes:
        if route.prefix.contains_address(address) and route.prefix.length > best_length:
            best = route.next_hop
            best_length = route.prefix.length
    return best


# ---------------------------------------------------------------------------
# ACLs
# ---------------------------------------------------------------------------


def monolithic_acl_check(
    acl1: Acl,
    acl2: Acl,
    router1: str = "router1",
    router2: str = "router2",
    space: Optional[PacketSpace] = None,
) -> Optional[AclCounterexample]:
    """One packet filtered differently by the two ACLs, or None."""
    if space is None:
        space = PacketSpace()
    permit1 = space.acl_permit_pred(acl1)
    permit2 = space.acl_permit_pred(acl2)
    difference = (permit1 - permit2) | (permit2 - permit1)
    if difference.is_false():
        return None
    model = complete_model(difference, space.manager.num_vars)
    assert model is not None
    packet = space.decode(model)
    permitted1 = bool((space.encode_concrete(
        packet.src_ip, packet.dst_ip, packet.protocol,
        packet.src_port, packet.dst_port, packet.icmp_type,
    ) & permit1))
    return AclCounterexample(
        packet=packet.describe(),
        action1="ACCEPT" if permitted1 else "REJECT",
        action2="REJECT" if permitted1 else "ACCEPT",
        router1=router1,
        router2=router2,
    )
