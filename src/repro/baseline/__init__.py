"""Minesweeper-style monolithic baseline (single-counterexample interface)."""

from .iterate import IterationResult, count_to_cover, iterate_route_map_counterexamples
from .monolithic import (
    AclCounterexample,
    RouteMapCounterexample,
    StaticRouteCounterexample,
    monolithic_acl_check,
    monolithic_route_map_check,
    monolithic_static_route_check,
    route_map_difference_set,
)

__all__ = [
    "AclCounterexample",
    "IterationResult",
    "RouteMapCounterexample",
    "StaticRouteCounterexample",
    "count_to_cover",
    "iterate_route_map_counterexamples",
    "monolithic_acl_check",
    "monolithic_route_map_check",
    "monolithic_static_route_check",
    "route_map_difference_set",
]
