"""SemanticDiff — all behavioral differences between two components (§3.1).

The algorithm is the paper's two-step:

1. partition each component's input space into path equivalence classes
   (done by the encoders, shared with the caller so the comparison and
   localization use one variable layout);
2. for every cross pair of classes whose predicates intersect and whose
   actions differ, emit a difference whose input set is the intersection.

Because classes within one component are disjoint, the emitted input sets
for a fixed class of one component are disjoint too, so a reader can sum
them; the union over all emitted differences is exactly the set of inputs
on which the components disagree (tests verify this against a concrete
first-match oracle).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..bdd import Bdd, BddManager
from ..encoding import (
    PacketSpace,
    RouteSpace,
    acl_equivalence_classes,
    route_map_equivalence_classes,
)
from ..encoding.classes import EquivalenceClass
from ..model.acl import Acl
from ..model.routemap import RouteMap
from .results import ComponentKind, SemanticDifference

__all__ = [
    "semantic_diff_classes",
    "diff_route_maps",
    "diff_acls",
]


def _disagreement_region(
    classes1: Sequence[EquivalenceClass], classes2: Sequence[EquivalenceClass]
) -> Bdd:
    """The set of inputs on which the two partitions' actions differ.

    Computed as the complement of the agreement region
    ``∪_a (U1_a ∧ U2_a)`` where ``U_a`` unions the classes taking action
    ``a``.  This costs O(n) BDD operations and lets the pairwise loop
    skip every class that only overlaps agreeing classes — on
    nearly-equivalent 10,000-rule ACLs (§5.4) that prunes the quadratic
    comparison down to the handful of genuinely differing paths.
    """
    manager = classes1[0].predicate.manager
    agree = manager.false
    by_action1 = {}
    by_action2 = {}
    for cls in classes1:
        key = cls.action if not hasattr(cls.action, "describe") else cls.action.describe()
        by_action1.setdefault(key, []).append(cls.predicate)
    for cls in classes2:
        key = cls.action if not hasattr(cls.action, "describe") else cls.action.describe()
        by_action2.setdefault(key, []).append(cls.predicate)
    for key, preds1 in by_action1.items():
        preds2 = by_action2.get(key)
        if not preds2:
            continue
        union1 = manager.disjoin(preds1)
        union2 = manager.disjoin(preds2)
        agree = agree | (union1 & union2)
    return ~agree


def semantic_diff_classes(
    kind: ComponentKind,
    classes1: Sequence[EquivalenceClass],
    classes2: Sequence[EquivalenceClass],
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
) -> List[SemanticDifference]:
    """Pairwise comparison of two path partitions (§3.1 step 2)."""
    differences: List[SemanticDifference] = []
    if not classes1 or not classes2:
        return differences
    disagree = _disagreement_region(classes1, classes2)
    if disagree.is_false():
        return differences
    candidates2 = [cls for cls in classes2 if cls.predicate.intersects(disagree)]
    for class1 in classes1:
        narrowed1 = class1.predicate & disagree
        if narrowed1.is_false():
            continue
        for class2 in candidates2:
            if class1.action == class2.action:
                continue
            overlap = class1.predicate & class2.predicate
            if overlap.is_false():
                continue
            differences.append(
                SemanticDifference(
                    kind=kind,
                    input_set=overlap,
                    class1=class1,
                    class2=class2,
                    router1=router1,
                    router2=router2,
                    context=context,
                )
            )
    return differences


def diff_route_maps(
    map1: RouteMap,
    map2: RouteMap,
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
    space: Optional[RouteSpace] = None,
) -> Tuple[RouteSpace, List[SemanticDifference]]:
    """SemanticDiff on two route maps.

    Builds (or reuses) a :class:`RouteSpace` whose vocabulary covers both
    policies and returns it with the differences so the caller can run
    HeaderLocalize and decode witnesses in the same space.
    """
    if space is None:
        space = RouteSpace([map1, map2])
    classes1 = route_map_equivalence_classes(space, map1)
    classes2 = route_map_equivalence_classes(space, map2)
    differences = semantic_diff_classes(
        ComponentKind.ROUTE_MAP, classes1, classes2, router1, router2, context
    )
    return space, differences


def diff_acls(
    acl1: Acl,
    acl2: Acl,
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
    space: Optional[PacketSpace] = None,
) -> Tuple[PacketSpace, List[SemanticDifference]]:
    """SemanticDiff on two ACLs over a shared packet space."""
    if space is None:
        space = PacketSpace()
    classes1 = acl_equivalence_classes(space, acl1)
    classes2 = acl_equivalence_classes(space, acl2)
    differences = semantic_diff_classes(
        ComponentKind.ACL, classes1, classes2, router1, router2, context
    )
    return space, differences
