"""SemanticDiff — all behavioral differences between two components (§3.1).

The algorithm is the paper's two-step:

1. partition each component's input space into path equivalence classes
   (done by the encoders, shared with the caller so the comparison and
   localization use one variable layout);
2. for every cross pair of classes whose predicates intersect and whose
   actions differ, emit a difference whose input set is the intersection.

Because classes within one component are disjoint, the emitted input sets
for a fixed class of one component are disjoint too, so a reader can sum
them; the union over all emitted differences is exactly the set of inputs
on which the components disagree (tests verify this against a concrete
first-match oracle).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..bdd import Bdd, BddManager
from ..encoding import (
    PacketSpace,
    RouteSpace,
    acl_equivalence_classes,
    route_map_equivalence_classes,
)
from ..encoding.classes import EquivalenceClass
from ..model.acl import Acl
from ..model.routemap import RouteMap
from .results import ComponentKind, SemanticDifference

__all__ = [
    "canonical_action_key",
    "semantic_diff_classes",
    "diff_route_maps",
    "diff_acls",
]


#: Entries kept per manager in the union memo.  A pairing computes the
#: unions for two class lists; fleet runs reuse one side across many
#: peers, so a handful of slots captures all the reuse while bounding
#: the memo for long-lived managers.
_UNION_CACHE_SIZE = 8

# Per-manager memo of per-action unions, keyed by the identity of the
# class list handed to SemanticDiff: fleet comparisons and repeated
# pairings diff the *same* partition against many peers, and the unions
# only depend on one side.  The outer WeakKeyDictionary lets a manager
# (and every BDD in it) be collected once its comparison is done — to
# keep that true, the memo stores raw node ids, never Bdd handles: a
# handle's ``.manager`` attribute would strongly reference the weak key
# through the value and pin the manager (and its caches) forever.
# Each inner memo is a small LRU (an OrderedDict in recency order): one
# partition diffed against many peers would otherwise accumulate an
# entry per distinct class-list key for the manager's whole lifetime.
_union_cache: "weakref.WeakKeyDictionary[BddManager, OrderedDict]" = (
    weakref.WeakKeyDictionary()
)


def canonical_action_key(action: object):
    """The canonical comparison key of a class's action.

    SemanticDiff compares actions by their canonical *description* when
    the action type provides one (``RouteMapAction.describe()`` renders
    the normalized disposition) and by the action value itself otherwise
    (``AclAction``).  Every comparison site — the agreement-region
    pruning, the pairwise loop, and the differential-testing oracle —
    must use this one key: mixing ``describe()``-keying with ``__eq__``
    yields spurious or missed differences whenever the two disagree.
    """
    return action.describe() if hasattr(action, "describe") else action


def _action_key(cls: EquivalenceClass):
    return canonical_action_key(cls.action)


def _action_unions(classes: Sequence[EquivalenceClass]) -> Dict:
    """Map each action to the union of its classes' predicates, memoized.

    The memo key is the (node id, action) sequence of the class list, so
    two calls over the same partition — however the caller rebuilt the
    list object — share one set of ``disjoin`` results.
    """
    manager = classes[0].predicate.manager
    per_manager = _union_cache.get(manager)
    if per_manager is None:
        per_manager = _union_cache.setdefault(manager, OrderedDict())
    key = tuple((cls.predicate.node, _action_key(cls)) for cls in classes)
    union_nodes = per_manager.get(key)
    if union_nodes is not None:
        perf.add("semantic_diff.union_cache_hits")
        per_manager.move_to_end(key)
    else:
        by_action: Dict = {}
        for cls in classes:
            by_action.setdefault(_action_key(cls), []).append(cls.predicate)
        union_nodes = {
            action: manager.disjoin(predicates).node
            for action, predicates in by_action.items()
        }
        per_manager[key] = union_nodes
        while len(per_manager) > _UNION_CACHE_SIZE:
            per_manager.popitem(last=False)
            perf.add("semantic_diff.union_cache_evictions")
    return {action: Bdd(manager, node) for action, node in union_nodes.items()}


def _disagreement_region(
    classes1: Sequence[EquivalenceClass], classes2: Sequence[EquivalenceClass]
) -> Bdd:
    """The set of inputs on which the two partitions' actions differ.

    Computed as the complement of the agreement region
    ``∪_a (U1_a ∧ U2_a)`` where ``U_a`` unions the classes taking action
    ``a``.  This costs O(n) BDD operations and lets the pairwise loop
    skip every class that only overlaps agreeing classes — on
    nearly-equivalent 10,000-rule ACLs (§5.4) that prunes the quadratic
    comparison down to the handful of genuinely differing paths.
    """
    manager = classes1[0].predicate.manager
    agree = manager.false
    unions1 = _action_unions(classes1)
    unions2 = _action_unions(classes2)
    for key, union1 in unions1.items():
        union2 = unions2.get(key)
        if union2 is None:
            continue
        agree = agree | (union1 & union2)
    return ~agree


def semantic_diff_classes(
    kind: ComponentKind,
    classes1: Sequence[EquivalenceClass],
    classes2: Sequence[EquivalenceClass],
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
) -> List[SemanticDifference]:
    """Pairwise comparison of two path partitions (§3.1 step 2)."""
    differences: List[SemanticDifference] = []
    if not classes1 or not classes2:
        return differences
    with perf.timer("semantic_diff"):
        pairs_compared = 0
        disagree = _disagreement_region(classes1, classes2)
        if disagree.is_false():
            perf.add("semantic_diff.classes", len(classes1) + len(classes2))
            return differences
        # Compare actions with the same canonical key the agreement-region
        # pruning used: keying one side by ``describe()`` and the other by
        # ``__eq__`` emits spurious differences inside the agreement region
        # (and misses real ones) whenever the two notions disagree.
        candidates2 = [
            (cls, _action_key(cls))
            for cls in classes2
            if cls.predicate.intersects(disagree)
        ]
        for class1 in classes1:
            if not class1.predicate.intersects(disagree):
                continue
            key1 = _action_key(class1)
            for class2, key2 in candidates2:
                if key1 == key2:
                    continue
                pairs_compared += 1
                overlap = class1.predicate & class2.predicate
                if overlap.is_false():
                    continue
                differences.append(
                    SemanticDifference(
                        kind=kind,
                        input_set=overlap,
                        class1=class1,
                        class2=class2,
                        router1=router1,
                        router2=router2,
                        context=context,
                    )
                )
        perf.add("semantic_diff.classes", len(classes1) + len(classes2))
        perf.add("semantic_diff.pairs_compared", pairs_compared)
        perf.add("semantic_diff.differences", len(differences))
    return differences


def diff_route_maps(
    map1: RouteMap,
    map2: RouteMap,
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
    space: Optional[RouteSpace] = None,
    node_limit: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> Tuple[RouteSpace, List[SemanticDifference]]:
    """SemanticDiff on two route maps.

    Builds (or reuses) a :class:`RouteSpace` whose vocabulary covers both
    policies and returns it with the differences so the caller can run
    HeaderLocalize and decode witnesses in the same space.

    ``node_limit``/``time_budget`` arm a resource budget on the space's
    BDD manager (see :meth:`BddManager.set_budget`); a blow-up then
    raises :class:`~repro.bdd.AnalysisBudgetExceeded` for the caller to
    convert into a per-component aborted result.
    """
    if space is None:
        space = RouteSpace([map1, map2])
    if node_limit is not None or time_budget is not None:
        space.manager.set_budget(node_limit=node_limit, time_budget=time_budget)
    classes1 = route_map_equivalence_classes(space, map1)
    classes2 = route_map_equivalence_classes(space, map2)
    differences = semantic_diff_classes(
        ComponentKind.ROUTE_MAP, classes1, classes2, router1, router2, context
    )
    return space, differences


def diff_acls(
    acl1: Acl,
    acl2: Acl,
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
    space: Optional[PacketSpace] = None,
    node_limit: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> Tuple[PacketSpace, List[SemanticDifference]]:
    """SemanticDiff on two ACLs over a shared packet space.

    ``node_limit``/``time_budget`` arm a resource budget on the space's
    BDD manager; see :func:`diff_route_maps`.
    """
    if space is None:
        space = PacketSpace()
    if node_limit is not None or time_budget is not None:
        space.manager.set_budget(node_limit=node_limit, time_budget=time_budget)
    classes1 = acl_equivalence_classes(space, acl1)
    classes2 = acl_equivalence_classes(space, acl2)
    differences = semantic_diff_classes(
        ComponentKind.ACL, classes1, classes2, router1, router2, context
    )
    return space, differences
