"""SemanticDiff — all behavioral differences between two components (§3.1).

The algorithm is the paper's two-step:

1. partition each component's input space into path equivalence classes
   (done by the encoders, shared with the caller so the comparison and
   localization use one variable layout);
2. for every cross pair of classes whose predicates intersect and whose
   actions differ, emit a difference whose input set is the intersection.

Step 2 is delegated to a pluggable set-algebra backend
(:mod:`repro.core.setalg`): the historical ``bdd`` backend runs the
pairwise ``intersects`` loop behind disagreement-region pruning, while
the default ``atoms`` backend refines both partitions into atomic
predicates once and reads the differing pairs off integer bitsets.  The
backends are equivalence-checked (identical difference lists, identical
hash-consed overlap nodes) by the oracle and the property suite, so
every caller-visible guarantee below holds for both.

Because classes within one component are disjoint, the emitted input sets
for a fixed class of one component are disjoint too, so a reader can sum
them; the union over all emitted differences is exactly the set of inputs
on which the components disagree (tests verify this against a concrete
first-match oracle).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .. import perf
from ..encoding import (
    PacketSpace,
    RouteSpace,
    acl_equivalence_classes,
    route_map_equivalence_classes,
)
from ..encoding.classes import EquivalenceClass
from ..model.acl import Acl
from ..model.routemap import RouteMap
from .results import ComponentKind, SemanticDifference

# The union memo and canonical action keying moved to repro.core.setalg
# with the backend split; re-exported here because callers and tests
# historically import them from this module.
from .setalg import (  # noqa: F401  (re-exports)
    _UNION_CACHE_SIZE,
    _action_key,
    _action_unions,
    _disagreement_region,
    _union_cache,
    BackendSpec,
    canonical_action_key,
    resolve_backend,
)

__all__ = [
    "canonical_action_key",
    "semantic_diff_classes",
    "diff_route_maps",
    "diff_acls",
]


def semantic_diff_classes(
    kind: ComponentKind,
    classes1: List[EquivalenceClass],
    classes2: List[EquivalenceClass],
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
    backend: BackendSpec = None,
) -> List[SemanticDifference]:
    """Pairwise comparison of two path partitions (§3.1 step 2).

    ``backend`` selects the set-algebra backend (a name from
    :data:`repro.core.setalg.BACKEND_NAMES`, a backend instance, or
    ``None`` for the process default); the result is identical for every
    backend, only the wall clock differs.
    """
    differences: List[SemanticDifference] = []
    if not classes1 or not classes2:
        return differences
    with perf.timer("semantic_diff"):
        for class1, class2, overlap in resolve_backend(backend).differing_pairs(
            classes1, classes2
        ):
            differences.append(
                SemanticDifference(
                    kind=kind,
                    input_set=overlap,
                    class1=class1,
                    class2=class2,
                    router1=router1,
                    router2=router2,
                    context=context,
                )
            )
        perf.add("semantic_diff.classes", len(classes1) + len(classes2))
        perf.add("semantic_diff.differences", len(differences))
    return differences


def diff_route_maps(
    map1: RouteMap,
    map2: RouteMap,
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
    space: Optional[RouteSpace] = None,
    node_limit: Optional[int] = None,
    time_budget: Optional[float] = None,
    set_backend: BackendSpec = None,
) -> Tuple[RouteSpace, List[SemanticDifference]]:
    """SemanticDiff on two route maps.

    Builds (or reuses) a :class:`RouteSpace` whose vocabulary covers both
    policies and returns it with the differences so the caller can run
    HeaderLocalize and decode witnesses in the same space.

    ``node_limit``/``time_budget`` arm a resource budget on the space's
    BDD manager (see :meth:`BddManager.set_budget`); a blow-up then
    raises :class:`~repro.bdd.AnalysisBudgetExceeded` for the caller to
    convert into a per-component aborted result.  ``set_backend``
    selects the set-algebra backend (see :func:`semantic_diff_classes`).
    """
    if space is None:
        space = RouteSpace([map1, map2])
    if node_limit is not None or time_budget is not None:
        space.manager.set_budget(node_limit=node_limit, time_budget=time_budget)
    classes1 = route_map_equivalence_classes(space, map1)
    classes2 = route_map_equivalence_classes(space, map2)
    differences = semantic_diff_classes(
        ComponentKind.ROUTE_MAP,
        classes1,
        classes2,
        router1,
        router2,
        context,
        backend=set_backend,
    )
    return space, differences


def diff_acls(
    acl1: Acl,
    acl2: Acl,
    router1: str = "router1",
    router2: str = "router2",
    context: str = "",
    space: Optional[PacketSpace] = None,
    node_limit: Optional[int] = None,
    time_budget: Optional[float] = None,
    set_backend: BackendSpec = None,
) -> Tuple[PacketSpace, List[SemanticDifference]]:
    """SemanticDiff on two ACLs over a shared packet space.

    ``node_limit``/``time_budget`` arm a resource budget on the space's
    BDD manager and ``set_backend`` selects the set-algebra backend; see
    :func:`diff_route_maps`.
    """
    if space is None:
        space = PacketSpace()
    if node_limit is not None or time_budget is not None:
        space.manager.set_budget(node_limit=node_limit, time_budget=time_budget)
    classes1 = acl_equivalence_classes(space, acl1)
    classes2 = acl_equivalence_classes(space, acl2)
    differences = semantic_diff_classes(
        ComponentKind.ACL,
        classes1,
        classes2,
        router1,
        router2,
        context,
        backend=set_backend,
    )
    return space, differences
