"""StructuralDiff — equality checks on stylized components (§3.3).

Components whose modular behavioral equivalence coincides with structural
equality (Table 1: static routes, connected routes, non-route-map BGP
properties, OSPF attributes, administrative distances) are compared as
atomic values, tuples, and sets:

* atomic values — equality,
* tuples — field-wise equality,
* sets — symmetric difference, with elements matched by a component key
  (static routes by prefix, BGP neighbors by peer address, OSPF
  interfaces by a pairing supplied by MatchPolicies).

Every mismatch becomes a :class:`~repro.core.results.StructuralDifference`
carrying both sides' values and source spans — localization is the check
itself, which is the paper's point about these components.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..model.bgp import BgpNeighbor, BgpProcess
from ..model.device import DeviceConfig
from ..model.ospf import OspfInterfaceSettings, OspfProcess
from ..model.static_route import ConnectedRoute, StaticRoute
from ..model.types import Prefix, SourceSpan, int_to_ip
from .results import ComponentKind, StructuralDifference

__all__ = [
    "diff_static_routes",
    "diff_connected_routes",
    "diff_bgp_properties",
    "diff_ospf_properties",
    "diff_admin_distances",
    "structural_diff_all",
]


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def diff_static_routes(
    device1: DeviceConfig, device2: DeviceConfig
) -> List[StructuralDifference]:
    """Set comparison of static routes, matched by destination prefix.

    Emits a presence difference for prefixes routed on one side only
    (Table 4), and per-attribute differences when both sides route the
    prefix differently (next hop, administrative distance, tag — the bug
    classes of §5.1 Scenarios 1-2).
    """
    differences: List[StructuralDifference] = []
    by_prefix1 = _group_routes(device1.static_routes)
    by_prefix2 = _group_routes(device2.static_routes)

    for prefix in sorted(set(by_prefix1) | set(by_prefix2)):
        routes1 = by_prefix1.get(prefix, [])
        routes2 = by_prefix2.get(prefix, [])
        if not routes1 or not routes2:
            present = routes1 or routes2
            source = present[0].source
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.STATIC_ROUTE,
                    component=f"static route {prefix}",
                    attribute="presence",
                    value1=present[0].describe() if routes1 else None,
                    value2=present[0].describe() if routes2 else None,
                    source1=source if routes1 else SourceSpan(),
                    source2=source if routes2 else SourceSpan(),
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
            continue
        differences.extend(
            _diff_route_attributes(prefix, routes1, routes2, device1, device2)
        )
    return differences


def _group_routes(routes: Iterable[StaticRoute]) -> Dict[Prefix, List[StaticRoute]]:
    grouped: Dict[Prefix, List[StaticRoute]] = {}
    for route in routes:
        grouped.setdefault(route.key(), []).append(route)
    return grouped


def _diff_route_attributes(
    prefix: Prefix,
    routes1: Sequence[StaticRoute],
    routes2: Sequence[StaticRoute],
    device1: DeviceConfig,
    device2: DeviceConfig,
) -> List[StructuralDifference]:
    """Attribute comparison for a prefix both routers route statically.

    Routes to the same prefix may be multipath; compare the *sets* of
    attribute tuples and report each attribute whose multiset of values
    differs, keeping one difference per attribute rather than per tuple
    (matching how the paper reports "incorrect next hops").
    """
    differences: List[StructuralDifference] = []
    set1 = {route.attributes() for route in routes1}
    set2 = {route.attributes() for route in routes2}
    if set1 == set2:
        return differences

    component = f"static route {prefix}"
    for attribute, selector in (
        ("next-hop", lambda r: int_to_ip(r.next_hop) if r.next_hop is not None else None),
        ("interface", lambda r: r.interface),
        ("admin-distance", lambda r: r.admin_distance),
        ("tag", lambda r: r.tag),
    ):
        values1 = sorted({_fmt(selector(r)) for r in routes1})
        values2 = sorted({_fmt(selector(r)) for r in routes2})
        if values1 != values2:
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.STATIC_ROUTE,
                    component=component,
                    attribute=attribute,
                    value1=", ".join(values1),
                    value2=", ".join(values2),
                    source1=routes1[0].source,
                    source2=routes2[0].source,
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
    return differences


def diff_connected_routes(
    device1: DeviceConfig, device2: DeviceConfig
) -> List[StructuralDifference]:
    """Symmetric difference of the connected-subnet sets (§3.3)."""
    differences: List[StructuralDifference] = []
    subnets1 = {route.prefix: route for route in device1.connected_routes()}
    subnets2 = {route.prefix: route for route in device2.connected_routes()}
    for prefix in sorted(set(subnets1) | set(subnets2)):
        if prefix in subnets1 and prefix in subnets2:
            continue
        present = subnets1.get(prefix) or subnets2.get(prefix)
        assert present is not None
        differences.append(
            StructuralDifference(
                kind=ComponentKind.CONNECTED_ROUTE,
                component=f"connected route {prefix}",
                attribute="presence",
                value1=f"via {present.interface}" if prefix in subnets1 else None,
                value2=f"via {present.interface}" if prefix in subnets2 else None,
                source1=present.source if prefix in subnets1 else SourceSpan(),
                source2=present.source if prefix in subnets2 else SourceSpan(),
                router1=device1.hostname,
                router2=device2.hostname,
            )
        )
    return differences


def diff_bgp_properties(
    device1: DeviceConfig, device2: DeviceConfig
) -> List[StructuralDifference]:
    """Structural comparison of BGP configuration outside route maps.

    Covers process presence/attributes, neighbor presence (matched by
    peer address), per-neighbor attributes (route-reflector-client,
    send-community, next-hop-self, policy presence — the university
    network's send-community discrepancy lives here), and redistribution
    entries (matched by source protocol).
    """
    differences: List[StructuralDifference] = []
    bgp1, bgp2 = device1.bgp, device2.bgp
    if bgp1 is None and bgp2 is None:
        return differences
    if bgp1 is None or bgp2 is None:
        present = bgp1 or bgp2
        assert present is not None
        differences.append(
            StructuralDifference(
                kind=ComponentKind.BGP_PROPERTY,
                component="bgp process",
                attribute="presence",
                value1=f"AS {present.asn}" if bgp1 else None,
                value2=f"AS {present.asn}" if bgp2 else None,
                source1=present.source if bgp1 else SourceSpan(),
                source2=present.source if bgp2 else SourceSpan(),
                router1=device1.hostname,
                router2=device2.hostname,
            )
        )
        return differences

    for attribute, value1, value2 in _zip_attribute_maps(
        bgp1.process_attributes(), bgp2.process_attributes()
    ):
        differences.append(
            StructuralDifference(
                kind=ComponentKind.BGP_PROPERTY,
                component="bgp process",
                attribute=attribute,
                value1=_fmt(value1),
                value2=_fmt(value2),
                source1=bgp1.source,
                source2=bgp2.source,
                router1=device1.hostname,
                router2=device2.hostname,
            )
        )

    neighbors1 = bgp1.neighbor_map()
    neighbors2 = bgp2.neighbor_map()
    for peer in sorted(set(neighbors1) | set(neighbors2)):
        neighbor1 = neighbors1.get(peer)
        neighbor2 = neighbors2.get(peer)
        component = f"bgp neighbor {int_to_ip(peer)}"
        if neighbor1 is None or neighbor2 is None:
            present = neighbor1 or neighbor2
            assert present is not None
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.BGP_PROPERTY,
                    component=component,
                    attribute="presence",
                    value1=present.describe() if neighbor1 else None,
                    value2=present.describe() if neighbor2 else None,
                    source1=present.source if neighbor1 else SourceSpan(),
                    source2=present.source if neighbor2 else SourceSpan(),
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
            continue
        for attribute, value1, value2 in _zip_attribute_maps(
            neighbor1.attributes(), neighbor2.attributes()
        ):
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.BGP_PROPERTY,
                    component=component,
                    attribute=attribute,
                    value1=_fmt(value1),
                    value2=_fmt(value2),
                    source1=neighbor1.source,
                    source2=neighbor2.source,
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )

    redists1 = {r.key(): r for r in bgp1.redistributions}
    redists2 = {r.key(): r for r in bgp2.redistributions}
    for protocol in sorted(set(redists1) | set(redists2)):
        redist1 = redists1.get(protocol)
        redist2 = redists2.get(protocol)
        component = f"bgp redistribute {protocol}"
        if redist1 is None or redist2 is None:
            present = redist1 or redist2
            assert present is not None
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.BGP_PROPERTY,
                    component=component,
                    attribute="presence",
                    value1="configured" if redist1 else None,
                    value2="configured" if redist2 else None,
                    source1=present.source if redist1 else SourceSpan(),
                    source2=present.source if redist2 else SourceSpan(),
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
            continue
        for attribute, value1, value2 in _zip_attribute_maps(
            redist1.attributes(), redist2.attributes()
        ):
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.BGP_PROPERTY,
                    component=component,
                    attribute=attribute,
                    value1=_fmt(value1),
                    value2=_fmt(value2),
                    source1=redist1.source,
                    source2=redist2.source,
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
    return differences


def diff_ospf_properties(
    device1: DeviceConfig,
    device2: DeviceConfig,
    interface_pairing: Optional[Dict[str, str]] = None,
) -> List[StructuralDifference]:
    """Structural comparison of OSPF configuration.

    ``interface_pairing`` maps router-1 interface names to router-2 names
    (from MatchPolicies' heuristics — backup routers rarely share
    interface naming, §4); identity pairing is assumed for names not in
    the map.
    """
    differences: List[StructuralDifference] = []
    ospf1, ospf2 = device1.ospf, device2.ospf
    if ospf1 is None and ospf2 is None:
        return differences
    if ospf1 is None or ospf2 is None:
        present = ospf1 or ospf2
        assert present is not None
        differences.append(
            StructuralDifference(
                kind=ComponentKind.OSPF_PROPERTY,
                component="ospf process",
                attribute="presence",
                value1="configured" if ospf1 else None,
                value2="configured" if ospf2 else None,
                source1=present.source if ospf1 else SourceSpan(),
                source2=present.source if ospf2 else SourceSpan(),
                router1=device1.hostname,
                router2=device2.hostname,
            )
        )
        return differences

    for attribute, value1, value2 in _zip_attribute_maps(
        ospf1.process_attributes(), ospf2.process_attributes()
    ):
        differences.append(
            StructuralDifference(
                kind=ComponentKind.OSPF_PROPERTY,
                component="ospf process",
                attribute=attribute,
                value1=_fmt(value1),
                value2=_fmt(value2),
                source1=ospf1.source,
                source2=ospf2.source,
                router1=device1.hostname,
                router2=device2.hostname,
            )
        )

    pairing = interface_pairing or {}
    interfaces1 = ospf1.interface_map()
    interfaces2 = ospf2.interface_map()
    matched2: set = set()
    for name1 in sorted(interfaces1):
        name2 = pairing.get(name1, name1)
        settings1 = interfaces1[name1]
        settings2 = interfaces2.get(name2)
        component = (
            f"ospf interface {name1}"
            if name1 == name2
            else f"ospf interface {name1} / {name2}"
        )
        if settings2 is None:
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.OSPF_PROPERTY,
                    component=component,
                    attribute="presence",
                    value1=f"area {settings1.area}",
                    value2=None,
                    source1=settings1.source,
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
            continue
        matched2.add(name2)
        for attribute, value1, value2 in _zip_attribute_maps(
            settings1.attributes(), settings2.attributes()
        ):
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.OSPF_PROPERTY,
                    component=component,
                    attribute=attribute,
                    value1=_fmt(value1),
                    value2=_fmt(value2),
                    source1=settings1.source,
                    source2=settings2.source,
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
    for name2 in sorted(set(interfaces2) - matched2):
        settings2 = interfaces2[name2]
        differences.append(
            StructuralDifference(
                kind=ComponentKind.OSPF_PROPERTY,
                component=f"ospf interface {name2}",
                attribute="presence",
                value1=None,
                value2=f"area {settings2.area}",
                source2=settings2.source,
                router1=device1.hostname,
                router2=device2.hostname,
            )
        )

    redists1 = {r.key(): r for r in ospf1.redistributions}
    redists2 = {r.key(): r for r in ospf2.redistributions}
    for protocol in sorted(set(redists1) | set(redists2)):
        redist1 = redists1.get(protocol)
        redist2 = redists2.get(protocol)
        component = f"ospf redistribute {protocol}"
        if redist1 is None or redist2 is None:
            present = redist1 or redist2
            assert present is not None
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.OSPF_PROPERTY,
                    component=component,
                    attribute="presence",
                    value1="configured" if redist1 else None,
                    value2="configured" if redist2 else None,
                    source1=present.source if redist1 else SourceSpan(),
                    source2=present.source if redist2 else SourceSpan(),
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
            continue
        for attribute, value1, value2 in _zip_attribute_maps(
            redist1.attributes(), redist2.attributes()
        ):
            differences.append(
                StructuralDifference(
                    kind=ComponentKind.OSPF_PROPERTY,
                    component=component,
                    attribute=attribute,
                    value1=_fmt(value1),
                    value2=_fmt(value2),
                    source1=redist1.source,
                    source2=redist2.source,
                    router1=device1.hostname,
                    router2=device2.hostname,
                )
            )
    return differences


def diff_admin_distances(
    device1: DeviceConfig, device2: DeviceConfig
) -> List[StructuralDifference]:
    """Per-protocol administrative distance comparison (Table 1)."""
    differences: List[StructuralDifference] = []
    for protocol in sorted(set(device1.admin_distances) | set(device2.admin_distances)):
        value1 = device1.admin_distances.get(protocol)
        value2 = device2.admin_distances.get(protocol)
        if value1 == value2:
            continue
        differences.append(
            StructuralDifference(
                kind=ComponentKind.ADMIN_DISTANCE,
                component=f"administrative distance ({protocol})",
                attribute="distance",
                value1=_fmt(value1) if value1 is not None else None,
                value2=_fmt(value2) if value2 is not None else None,
                router1=device1.hostname,
                router2=device2.hostname,
            )
        )
    return differences


def structural_diff_all(
    device1: DeviceConfig,
    device2: DeviceConfig,
    interface_pairing: Optional[Dict[str, str]] = None,
) -> List[StructuralDifference]:
    """All structural checks of Table 1 in one pass."""
    differences = diff_static_routes(device1, device2)
    differences.extend(diff_connected_routes(device1, device2))
    differences.extend(diff_bgp_properties(device1, device2))
    differences.extend(diff_ospf_properties(device1, device2, interface_pairing))
    differences.extend(diff_admin_distances(device1, device2))
    return differences


def _zip_attribute_maps(
    attributes1: Dict[str, object], attributes2: Dict[str, object]
) -> List[Tuple[str, object, object]]:
    """Attribute names whose values differ, with both values."""
    mismatches: List[Tuple[str, object, object]] = []
    for attribute in sorted(set(attributes1) | set(attributes2)):
        value1 = attributes1.get(attribute)
        value2 = attributes2.get(attribute)
        if value1 != value2:
            mismatches.append((attribute, value1, value2))
    return mismatches
