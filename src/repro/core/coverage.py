"""Configuration coverage — which policy lines the diff exercised.

NetCov's observation (PAPERS.md): operators only trust an analysis run
when they can see *which configuration lines it actually used*.  For a
fleet run the analogue is per-device policy-line coverage: of the lines
that define each ACL and route map, which ones participated in some
localized difference against the fleet reference (the spans
SemanticDiff/StructuralDiff/Present already attach to every reported
difference), and which policies produced no difference at all —
either genuinely conforming or dead/unreached policy the run says
nothing further about.

Coverage is a pure function of the finished :class:`FleetReport` and
the parsed devices, so it is byte-identical across set-algebra
backends, worker counts, and symmetry compression — exactly like the
rest of the serialized report (schema v4 carries it).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..model.device import DeviceConfig
from ..model.types import SourceSpan
from .results import ComponentKind

__all__ = [
    "PolicyCoverage",
    "DeviceCoverage",
    "policy_spans",
    "compute_fleet_coverage",
]


@dataclass(frozen=True)
class PolicyCoverage:
    """Line coverage of one named policy (ACL or route map)."""

    kind: str  # "acl" | "route-map"
    name: str
    #: every 1-based config line that defines this policy (including
    #: lines of resolved sub-objects such as referenced prefix lists)
    lines: Tuple[int, ...]
    #: the subset of ``lines`` touched by some localized difference
    exercised: Tuple[int, ...]

    @property
    def is_exercised(self) -> bool:
        """Whether any line of this policy appears in a difference."""
        return bool(self.exercised)

    def describe(self) -> str:
        """Short ``kind name`` label, e.g. ``acl GW_POLICY``."""
        return f"{self.kind} {self.name}"


@dataclass(frozen=True)
class DeviceCoverage:
    """Per-device configuration coverage, policies sorted by name."""

    hostname: str
    policies: Tuple[PolicyCoverage, ...]

    @property
    def policy_lines(self) -> int:
        """Total policy-defining lines on this device."""
        return sum(len(policy.lines) for policy in self.policies)

    @property
    def exercised_lines(self) -> int:
        """Policy lines that participated in some localized diff."""
        return sum(len(policy.exercised) for policy in self.policies)

    @property
    def unexercised(self) -> List[str]:
        """Policies no difference touched (conforming or dead policy)."""
        return [
            policy.describe()
            for policy in self.policies
            if not policy.is_exercised
        ]

    def to_dict(self) -> Dict:
        """JSON-compatible, deterministically ordered representation."""
        return {
            "policy_lines": self.policy_lines,
            "exercised_lines": self.exercised_lines,
            "policies": [
                {
                    "kind": policy.kind,
                    "name": policy.name,
                    "lines": len(policy.lines),
                    "exercised": list(policy.exercised),
                }
                for policy in self.policies
            ],
            "unexercised": self.unexercised,
        }

    def render(self) -> str:
        """One summary line for the CLI coverage section."""
        parts = [
            f"{self.hostname}: {self.exercised_lines}/{self.policy_lines}"
            " policy line(s) exercised"
        ]
        if self.unexercised:
            parts.append("untouched: " + ", ".join(self.unexercised))
        return "; ".join(parts)


def _walk_spans(value: object) -> Iterable[SourceSpan]:
    """Every non-empty SourceSpan reachable from a model object."""
    if isinstance(value, SourceSpan):
        if not value.is_empty():
            yield value
        return
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for field in dataclasses.fields(value):
            yield from _walk_spans(getattr(value, field.name))
        return
    if isinstance(value, dict):
        for item in value.values():
            yield from _walk_spans(item)
        return
    if isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            yield from _walk_spans(item)


def _span_lines(span: SourceSpan, filename: str) -> Iterable[int]:
    if span.filename == filename and span.start_line > 0:
        return range(span.start_line, span.end_line + 1)
    return ()


def policy_spans(device: DeviceConfig) -> List[Tuple[str, str, FrozenSet[int]]]:
    """``(kind, name, line_numbers)`` for every policy on a device.

    Line numbers come from every span reachable from the policy object,
    so a route map's footprint includes the definition lines of the
    prefix/community lists its clauses resolve — those lines shape the
    policy's behavior, so a difference touching the clause exercises
    them too (they are where the operator must look).
    """
    result: List[Tuple[str, str, FrozenSet[int]]] = []
    for name in sorted(device.acls):
        lines = frozenset(
            number
            for span in _walk_spans(device.acls[name])
            for number in _span_lines(span, device.filename)
        )
        result.append(("acl", name, lines))
    for name in sorted(device.route_maps):
        lines = frozenset(
            number
            for span in _walk_spans(device.route_maps[name])
            for number in _span_lines(span, device.filename)
        )
        result.append(("route-map", name, lines))
    return result


_UNMATCHED_KINDS = {
    ComponentKind.ACL: "acl",
    ComponentKind.ROUTE_MAP: "route-map",
}


def _touched(fleet_report, hostname: str, filename: str):
    """Difference-touched lines + wholly-unmatched policies for a device.

    The reference device appears as ``router1`` in every reference
    report; each other device only in its own.  An unmatched policy
    (present on one side only) has no differing-line pair to point at —
    the policy's existence *is* the difference — so it is returned
    separately and marks the whole policy exercised.
    """
    lines = set()
    unmatched = set()
    for other, report in fleet_report.reports.items():
        if hostname == fleet_report.reference:
            sides = [
                (difference.class1.source, difference)
                for difference in report.semantic
            ] + [(difference.source1, difference) for difference in report.structural]
        elif hostname == other:
            sides = [
                (difference.class2.source, difference)
                for difference in report.semantic
            ] + [(difference.source2, difference) for difference in report.structural]
        else:
            continue
        for span, _ in sides:
            lines.update(_span_lines(span, filename))
        for policy in report.unmatched:
            kind = _UNMATCHED_KINDS.get(policy.kind)
            if kind is not None and policy.present_on == hostname:
                unmatched.add((kind, policy.name))
    return lines, unmatched


def compute_fleet_coverage(
    devices_by_name: Dict[str, DeviceConfig], fleet_report
) -> Dict[str, DeviceCoverage]:
    """Per-device coverage for a finished fleet comparison.

    Deterministic in the report content alone: spans recorded in the
    reference reports are intersected with each device's policy line
    sets, so any knob that leaves the serialized report unchanged
    (backend, workers, memo warmth, symmetry compression) leaves
    coverage unchanged too.
    """
    coverage: Dict[str, DeviceCoverage] = {}
    for hostname in fleet_report.hostnames:
        device = devices_by_name[hostname]
        touched, unmatched = _touched(fleet_report, hostname, device.filename)
        policies = []
        for kind, name, lines in policy_spans(device):
            if (kind, name) in unmatched:
                exercised = tuple(sorted(lines))
            else:
                exercised = tuple(sorted(lines & touched))
            policies.append(
                PolicyCoverage(
                    kind=kind, name=name,
                    lines=tuple(sorted(lines)), exercised=exercised,
                )
            )
        coverage[hostname] = DeviceCoverage(
            hostname=hostname, policies=tuple(policies)
        )
    return coverage
