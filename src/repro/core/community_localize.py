"""Exhaustive localization of the community dimension — the §3.2/§4
extension the paper leaves as future work.

Campion localizes the prefix dimension exhaustively but reports only a
*single example* for communities ("It is possible to extend
HeaderLocalize to provide exhaustive information across multiple parts
of a route advertisement" — §4).  This module implements that
extension for standard communities:

The community dimension of a comparison is a finite boolean space over
the comparison's community atoms (see
:func:`repro.encoding.route.community_universe`).  Projecting a
difference's input set onto those variables yields a boolean function
whose BDD cube cover is already a compact DNF: each cube is a
*condition* — communities that must be carried, communities that must
be absent, everything else free.  For the paper's Figure 1 bug this
produces exactly

    (10:10 ∧ ¬10:11) ∨ (¬10:10 ∧ 10:11)

i.e. "routes carrying exactly one of the two tags" — a complete
characterization where the paper's tool shows one sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..bdd import Bdd
from ..encoding.route import RouteSpace
from ..model.types import Community

__all__ = ["CommunityCondition", "CommunityLocalization", "localize_communities"]


@dataclass(frozen=True)
class CommunityCondition:
    """One disjunct: required communities ∧ ¬(forbidden communities)."""

    required: FrozenSet[Community] = frozenset()
    forbidden: FrozenSet[Community] = frozenset()

    def render(self) -> str:
        """Human-readable conjunction, e.g. ``10:10 and not 10:11``."""
        parts = [str(c) for c in sorted(self.required)]
        parts.extend(f"not {c}" for c in sorted(self.forbidden))
        if not parts:
            return "(any communities)"
        return " and ".join(parts)

    def matches(self, carried: FrozenSet[Community]) -> bool:
        """Concrete test, used as the oracle in property tests."""
        return self.required <= carried and not (self.forbidden & carried)


@dataclass(frozen=True)
class CommunityLocalization:
    """The full community-space characterization of a difference.

    ``conditions`` is the exact DNF (used by :meth:`matches`);
    ``summary`` is a human-oriented equivalent in *at least one of /
    none of* form when the function has that shape (regex-set
    differences typically do), preferred by :meth:`render`.
    """

    conditions: Tuple[CommunityCondition, ...]
    universal: bool = False  # difference independent of communities
    summary: Optional[str] = None

    def render(self) -> str:
        """Human-readable DNF (or the compact summary when available)."""
        if self.universal:
            return "(any communities)"
        if not self.conditions:
            return "(unsatisfiable)"
        if self.summary is not None:
            return self.summary
        return "\nor ".join(condition.render() for condition in self.conditions)

    def matches(self, carried: FrozenSet[Community]) -> bool:
        """Concrete membership test against the exact DNF (test oracle)."""
        if self.universal:
            return True
        return any(condition.matches(carried) for condition in self.conditions)


def localize_communities(space: RouteSpace, affected: Bdd) -> CommunityLocalization:
    """Project ``affected`` onto the community dimension and return its
    exhaustive DNF over the comparison's community atoms.

    The projection quantifies away every non-community variable, asking
    "for which community sets does *some* advertisement exhibit the
    difference" — the community-dimension analogue of HeaderLocalize's
    prefix projection.
    """
    manager = space.manager
    community_indices = {
        var.support()[0]: community
        for community, var in space.community_vars.items()
    }
    drop = [
        index
        for index in range(manager.num_vars)
        if index not in community_indices
    ]
    projected = manager.exists(affected, drop)
    if projected.is_true():
        return CommunityLocalization(conditions=(), universal=True)

    conditions: List[CommunityCondition] = []
    for cube in manager.iter_cubes(projected):
        required = frozenset(
            community_indices[index] for index, value in cube.items() if value
        )
        forbidden = frozenset(
            community_indices[index] for index, value in cube.items() if not value
        )
        conditions.append(CommunityCondition(required, forbidden))
    summary = _summarize(space, projected, community_indices)
    return CommunityLocalization(conditions=tuple(conditions), summary=summary)


def _summarize(space: RouteSpace, projected: Bdd, community_indices) -> Optional[str]:
    """A compact equivalent when the function has one of two shapes:

    * ``(all of P) and (none of N)`` — pure conjunction, or
    * ``(at least one of P) and (none of N)`` — the shape regex-set
      differences produce ("any of the communities only one side's regex
      accepts, carrying none of the shared ones").
    """
    manager = space.manager
    support_atoms = [
        community_indices[index]
        for index in projected.support()
        if index in community_indices
    ]
    if not support_atoms:
        return None
    forbidden = [
        atom
        for atom in support_atoms
        if (projected & space.community_pred(atom)).is_false()
    ]
    required = [
        atom
        for atom in support_atoms
        if projected.implies(space.community_pred(atom))
    ]
    positives = [a for a in support_atoms if a not in forbidden and a not in required]
    base = manager.conjoin(space.community_pred(a) for a in required) & manager.conjoin(
        ~space.community_pred(a) for a in forbidden
    )

    def render_summary(head: str) -> str:
        parts = []
        if required:
            parts.append(" and ".join(str(a) for a in sorted(required)))
        if head:
            parts.append(head)
        if forbidden:
            rendered = ", ".join(str(a) for a in sorted(forbidden))
            parts.append(f"none of {{{rendered}}}")
        return " and ".join(parts)

    if not positives:
        if base == projected:
            return render_summary("")
        return None
    at_least_one = manager.disjoin(space.community_pred(a) for a in positives)
    if (base & at_least_one) == projected:
        rendered = ", ".join(str(a) for a in sorted(positives))
        return render_summary(f"at least one of {{{rendered}}}")
    return None
