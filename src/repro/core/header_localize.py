"""HeaderLocalize — minimal representation of an affected input set (§3.2).

Given the BDD ``S`` of inputs exhibiting a behavioral difference (from
SemanticDiff) and the prefix ranges appearing in the two configurations,
produce a compact union of *difference terms* ``R − X₁ − … − Xₖ`` over
those ranges.  The algorithm is the paper's:

1. extract the configurations' ranges, add the universe, close under
   intersection, and build the ddNF containment DAG (``core.ddnf``);
2. traverse with the recursive ``GetMatch`` — a leaf contributes itself
   when contained in ``S``; an internal node whose *remainder* (itself
   minus its children) lies in ``S`` contributes itself minus whatever
   parts of its children are *not* in ``S`` (computed by recursing with
   the complement); otherwise recurse into children and union;
3. flatten nested differences in one pass: ``C − (F − G)`` becomes
   ``{C − F, G}`` (valid because nested terms always denote subsets of
   their enclosing range in a containment DAG);
4. prune the flat union down to a *minimal* cover: flattening can
   surface a nested term that another branch of the DAG already covers
   (two overlapping parents whose match parts nest), so redundant flat
   terms are dropped — checked semantically against the BDD — until no
   term is covered by the union of the rest.

The same machinery handles route maps (ranges are
:class:`~repro.model.types.PrefixRange` over the advertisement's
prefix+length dimensions) and ACLs (ranges are address prefixes over the
source or destination address dimensions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

from .. import perf
from ..bdd import Bdd
from .ddnf import DdnfDag, DdnfNode, RangeAlgebra, build_dag

__all__ = [
    "HeaderLocalizeError",
    "MatchTerm",
    "FlatTerm",
    "Localization",
    "GetMatchStats",
    "get_match",
    "flatten_terms",
    "minimal_flat_terms",
    "header_localize",
]

ElementT = TypeVar("ElementT")


class HeaderLocalizeError(RuntimeError):
    """The affected set is not expressible over the supplied ranges.

    By construction SemanticDiff's sets are boolean combinations of the
    configurations' range predicates, making every remainder/leaf either
    contained in or disjoint from the set; this error firing means the
    caller passed ranges that don't generate the set's algebra.
    """


@dataclass(frozen=True)
class MatchTerm(Generic[ElementT]):
    """A (possibly nested) difference term ``range − minus₁ − …``."""

    range: ElementT
    minus: Tuple["MatchTerm[ElementT]", ...] = ()

    def render(self) -> str:
        """Human-readable nested-difference form."""
        if not self.minus:
            return str(self.range)
        inner = ", ".join(term.render() for term in self.minus)
        return f"({self.range}) - [{inner}]"


@dataclass(frozen=True)
class FlatTerm(Generic[ElementT]):
    """A flattened term: one positive range minus plain ranges only."""

    range: ElementT
    minus: Tuple[ElementT, ...] = ()

    def render(self) -> str:
        """Human-readable flat-difference form."""
        if not self.minus:
            return str(self.range)
        inner = " - ".join(str(m) for m in self.minus)
        return f"{self.range} - {inner}"


@dataclass
class GetMatchStats:
    """Instrumentation for the ablation benchmarks."""

    dag_nodes: int = 0
    containment_checks: int = 0
    recursive_calls: int = 0


@dataclass(frozen=True)
class Localization(Generic[ElementT]):
    """HeaderLocalize's output for one behavioral difference.

    ``included`` / ``excluded`` are the merged positive and subtracted
    ranges — the *Included Prefixes* / *Excluded Prefixes* rows of
    Table 2 — while ``terms`` keeps the precise structure.
    """

    terms: Tuple[FlatTerm[ElementT], ...]
    stats: GetMatchStats = field(default_factory=GetMatchStats, compare=False)

    @property
    def included(self) -> List[ElementT]:
        """The positive ranges (Included Prefixes row)."""
        return _unique_in_order(term.range for term in self.terms)

    @property
    def excluded(self) -> List[ElementT]:
        """The subtracted ranges (Excluded Prefixes row)."""
        return _unique_in_order(
            minus for term in self.terms for minus in term.minus
        )

    def render(self) -> str:
        """Union of the flat terms, rendered."""
        return " ∪ ".join(term.render() for term in self.terms)

    def is_empty(self) -> bool:
        """Whether the localized set is empty."""
        return not self.terms


def get_match(
    affected: Bdd,
    dag: DdnfDag[ElementT],
    to_pred: Callable[[ElementT], Bdd],
    stats: Optional[GetMatchStats] = None,
) -> List[MatchTerm[ElementT]]:
    """The paper's recursive GetMatch over the containment DAG.

    ``to_pred`` maps a range label to its BDD over the same dimensions as
    ``affected`` (other dimensions must already be projected away by the
    caller).
    """
    if stats is None:
        stats = GetMatchStats()
    stats.dag_nodes = len(dag)

    manager = affected.manager
    pred_cache: dict = {}

    def pred_of(label: ElementT) -> Bdd:
        cached = pred_cache.get(label)
        if cached is None:
            cached = to_pred(label)
            pred_cache[label] = cached
        return cached

    def contained(part: Bdd, target: Bdd) -> bool:
        stats.containment_checks += 1
        return part.implies(target)

    def walk(target: Bdd, node: DdnfNode[ElementT]) -> List[MatchTerm[ElementT]]:
        stats.recursive_calls += 1
        node_pred = pred_of(node.label)
        if node.is_leaf():
            if contained(node_pred, target):
                return [MatchTerm(node.label)]
            if node_pred.intersects(target):
                raise HeaderLocalizeError(
                    f"leaf {node.label} straddles the affected set; "
                    "the range vocabulary does not generate it"
                )
            return []
        remainder = node_pred
        for child in node.children:
            remainder = remainder - pred_of(child.label)
        if contained(remainder, target):
            complement = ~target
            nonmatches: List[MatchTerm[ElementT]] = []
            for child in node.children:
                nonmatches.extend(walk(complement, child))
            return [MatchTerm(node.label, tuple(_prune(nonmatches)))]
        if remainder.intersects(target):
            raise HeaderLocalizeError(
                f"remainder of {node.label} straddles the affected set; "
                "the range vocabulary does not generate it"
            )
        matches: List[MatchTerm[ElementT]] = []
        for child in node.children:
            matches.extend(walk(target, child))
        return _prune(matches)

    def denote(term: MatchTerm[ElementT]) -> Bdd:
        result = pred_of(term.range)
        for subtrahend in term.minus:
            result = result - denote(subtrahend)
        return result

    def _prune(terms: List[MatchTerm[ElementT]]) -> List[MatchTerm[ElementT]]:
        """Drop terms semantically covered by the union of the others.

        Overlapping DAG siblings (whose intersection is itself a closure
        node) can contribute redundant terms — e.g. ``B − D − (E∩D)``
        where ``E∩D ⊆ D``; the paper asks for the *minimal*
        representation, so we greedily keep only non-redundant terms,
        preferring structurally simpler (fewer subtrahends) ones.
        """
        unique = _dedupe(terms)
        if len(unique) <= 1:
            return unique
        # Simple terms first so complex ones are dropped preferentially.
        ordered = sorted(unique, key=lambda t: (len(t.minus), repr(t.range)))
        denotations = {id(term): denote(term) for term in ordered}
        kept: List[MatchTerm[ElementT]] = []
        for index, term in enumerate(ordered):
            rest = kept + ordered[index + 1 :]
            union_rest = manager.disjoin(denotations[id(t)] for t in rest)
            if not denotations[id(term)].implies(union_rest):
                kept.append(term)
        return kept

    terms = walk(affected, dag.root)
    return _dedupe(terms)


def _unique_in_order(items) -> List:
    """Hash-based order-preserving dedup.

    All the dedup sites (terms, ranges) previously did ``item not in
    seen`` against a list, degrading large localizations to O(n²);
    terms and ranges are hashable, so a set membership check keeps each
    pass linear.
    """
    seen: set = set()
    unique: List = []
    for item in items:
        if item not in seen:
            seen.add(item)
            unique.append(item)
    return unique


def _dedupe(terms: List[MatchTerm[ElementT]]) -> List[MatchTerm[ElementT]]:
    """Drop duplicate terms (a node reachable via two parents is visited
    twice in a DAG traversal)."""
    return _unique_in_order(terms)


def flatten_terms(terms: Sequence[MatchTerm[ElementT]]) -> List[FlatTerm[ElementT]]:
    """Single-pass removal of nested differences (§3.2's final step).

    ``R − (X − Y)`` = ``(R − X) ∪ Y`` because ``Y ⊆ X ⊆ R`` in a
    containment DAG, so each nested subtrahend surfaces as its own term.
    """
    flat: List[FlatTerm[ElementT]] = []

    def emit(term: MatchTerm[ElementT]) -> None:
        flat.append(FlatTerm(term.range, tuple(m.range for m in term.minus)))
        for subtrahend in term.minus:
            for nested in subtrahend.minus:
                emit(nested)

    for term in terms:
        emit(term)
    # Deduplicate while preserving discovery order.
    return _unique_in_order(flat)


def minimal_flat_terms(
    flat: Sequence[FlatTerm[ElementT]],
    to_pred: Callable[[ElementT], Bdd],
    manager,
) -> List[FlatTerm[ElementT]]:
    """Drop flat terms semantically covered by the union of the rest.

    GetMatch prunes redundant *nested* terms at every DAG level, but
    flattening can still surface a redundant piece: when two overlapping
    parents both exclude parts of the affected set, the matching part
    recovered under one parent (say ``G1 = G2 ∩ X1``) may be strictly
    contained in the part recovered under the other (``G2``), and both
    surface as stand-alone flat terms.  The paper's output is the
    *minimal* representation, so we greedily keep only non-redundant
    terms, preferring structurally simpler (fewer subtrahends) ones.
    The greedy drop preserves the denoted union exactly: a term is only
    dropped while the remaining candidates still cover it.
    """
    unique = _unique_in_order(flat)
    if len(unique) <= 1:
        return list(unique)

    def denote(term: FlatTerm[ElementT]) -> Bdd:
        result = to_pred(term.range)
        for subtrahend in term.minus:
            result = result - to_pred(subtrahend)
        return result

    ordered = sorted(unique, key=lambda t: (len(t.minus), repr(t.range)))
    denotations = {id(term): denote(term) for term in ordered}
    kept: List[FlatTerm[ElementT]] = []
    for index, term in enumerate(ordered):
        rest = kept + ordered[index + 1 :]
        union_rest = manager.disjoin(denotations[id(t)] for t in rest)
        if not denotations[id(term)].implies(union_rest):
            kept.append(term)
    if len(kept) == len(unique):
        return list(unique)
    perf.add("header_localize.flat_terms_pruned", len(unique) - len(kept))
    # Preserve discovery order for the survivors.
    survivors = {id(term) for term in kept}
    return [term for term in unique if id(term) in survivors]


def header_localize(
    affected: Bdd,
    ranges: Sequence[ElementT],
    algebra: RangeAlgebra[ElementT],
    to_pred: Callable[[ElementT], Bdd],
) -> Localization[ElementT]:
    """End-to-end HeaderLocalize: DAG build, GetMatch, flattening, and
    the final minimality prune over the flat terms."""
    with perf.timer("header_localize"):
        stats = GetMatchStats()
        dag = build_dag(ranges, algebra)
        terms = get_match(affected, dag, to_pred, stats)
        flat = minimal_flat_terms(
            flatten_terms(terms), to_pred, affected.manager
        )
        localization = Localization(terms=tuple(flat), stats=stats)
    perf.add("header_localize.ranges", len(ranges))
    perf.add("header_localize.terms", len(localization.terms))
    return localization
