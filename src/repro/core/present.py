"""Present — turning raw differences into the paper's report tables (§3).

Present does two jobs:

1. **Localization attachment** — for each SemanticDiff result, run
   HeaderLocalize over the appropriate dimensions: the prefix+length
   space for route maps (Table 2), and the destination/source address
   spaces for ACLs (Table 7).  Dimensions the paper does not localize
   exhaustively (communities, protocols, ports) get one concrete example
   decoded from a witness model, plus a count of further constrained
   fields (Table 7's "+28 more").
2. **Rendering** — the two-column difference tables: Included/Excluded
   sets, Policy Name, Action, and Text rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd import Bdd, complete_model
from ..encoding.packet import PacketSpace
from ..encoding.route import RouteSpace
from ..model.acl import Acl, IP_PROTOCOL_NAMES
from ..model.routemap import RouteMap
from ..model.types import Prefix, PrefixRange, int_to_ip
from .header_localize import (
    HeaderLocalizeError,
    Localization,
    LocalizeSession,
    header_localize,
)
from .ddnf import address_prefix_algebra, prefix_range_algebra
from .results import CampionReport, ComponentKind, SemanticDifference, StructuralDifference

__all__ = [
    "localize_route_map_difference",
    "localize_route_map_differences",
    "localize_acl_difference",
    "localize_acl_differences",
    "render_semantic_difference",
    "render_structural_difference",
    "render_report",
]


# ---------------------------------------------------------------------------
# Localization attachment
# ---------------------------------------------------------------------------


def localize_route_map_differences(
    space: RouteSpace,
    differences: Sequence[SemanticDifference],
    map1: RouteMap,
    map2: RouteMap,
    exhaustive_communities: bool = False,
    backend: Optional[str] = None,
) -> None:
    """Attach prefix-range localizations for one pair's differences.

    The range vocabulary, the predicate cache, and (under the bitset
    backends) the DAG atom decomposition are built once for the pair
    and shared across every difference — see :class:`LocalizeSession`.
    """
    ranges = map1.prefix_ranges() + map2.prefix_ranges()
    session = LocalizeSession(backend=backend)
    for difference in differences:
        _localize_route_map(
            space, difference, ranges, session, exhaustive_communities
        )


def localize_route_map_difference(
    space: RouteSpace,
    difference: SemanticDifference,
    map1: RouteMap,
    map2: RouteMap,
    exhaustive_communities: bool = False,
) -> None:
    """Single-difference form of :func:`localize_route_map_differences`."""
    localize_route_map_differences(
        space, [difference], map1, map2, exhaustive_communities
    )


def _localize_route_map(
    space: RouteSpace,
    difference: SemanticDifference,
    ranges: Sequence[PrefixRange],
    session: LocalizeSession,
    exhaustive_communities: bool,
) -> None:
    """Attach prefix-range localization and a community example (§3.2).

    The affected set is projected onto the prefix+length dimensions and
    expressed over the prefix ranges appearing in either configuration.
    For the community dimension Campion reports one example (the paper's
    current behavior); we decode it from a deterministic witness.  With
    ``exhaustive_communities=True`` the §4 future-work extension runs
    instead: the community dimension is localized exhaustively as a DNF
    over the comparison's community atoms (see
    :mod:`repro.core.community_localize`).
    """
    affected = space.project_to_prefix(difference.input_set)
    try:
        difference.localization = header_localize(
            affected,
            ranges,
            prefix_range_algebra(),
            lambda prefix_range: space.range_pred(prefix_range),
            session=session,
            dimension="prefix",
        )
    except HeaderLocalizeError:
        difference.localization = None  # fall back to example-only output

    model = complete_model(difference.input_set, space.manager.num_vars)
    if model is not None:
        example = space.decode(model)
        described = example.describe()
        difference.example = {}
        support = set(difference.input_set.support())
        community_support = any(
            var.support()[0] in support for var in space.community_vars.values()
        )
        if community_support and exhaustive_communities:
            from .community_localize import localize_communities

            difference.extra_localizations["communities"] = localize_communities(
                space, difference.input_set
            )
        elif community_support and example.communities:
            difference.example["Community"] = " ".join(
                sorted(str(c) for c in example.communities)
            )
        elif community_support:
            difference.example["Community"] = "(none carried)"
        if "as-path-regexes" in described:
            difference.example["AS Path"] = described["as-path-regexes"]
        tag_support = any(index in support for index in space.tag.var_indices)
        if tag_support:
            difference.example["Tag"] = described.get("tag", "0")
        protocol_support = any(
            index in support for index in space.protocol.var_indices
        )
        if protocol_support:
            difference.example["Protocol"] = example.protocol


def localize_acl_differences(
    space: PacketSpace,
    differences: Sequence[SemanticDifference],
    acl1: Acl,
    acl2: Acl,
    backend: Optional[str] = None,
) -> None:
    """Attach address localizations for one pair's ACL differences.

    The per-dimension address vocabularies (previously rebuilt from
    both ACLs' lines for every difference), the projection variable
    lists, the predicate caches, and (under the bitset backends) the
    DAG atom decompositions are built once for the pair and shared
    across every difference — see :class:`LocalizeSession`.
    """
    vocabulary_src: List[Prefix] = []
    vocabulary_dst: List[Prefix] = []
    for acl in (acl1, acl2):
        for line in acl.lines:
            src_prefix = line.src.as_prefix()
            dst_prefix = line.dst.as_prefix()
            if src_prefix is not None and src_prefix not in vocabulary_src:
                vocabulary_src.append(src_prefix)
            if dst_prefix is not None and dst_prefix not in vocabulary_dst:
                vocabulary_dst.append(dst_prefix)

    session = LocalizeSession(backend=backend)
    dimensions = []
    for label, field, vocabulary in (
        ("srcIp", space.src_ip, vocabulary_src),
        ("dstIp", space.dst_ip, vocabulary_dst),
    ):
        keep = set(field.var_indices)
        drop = [
            index for index in range(space.manager.num_vars) if index not in keep
        ]
        dimensions.append((label, field, vocabulary, drop))

    for difference in differences:
        _localize_acl(space, difference, dimensions, session)


def localize_acl_difference(
    space: PacketSpace,
    difference: SemanticDifference,
    acl1: Acl,
    acl2: Acl,
) -> None:
    """Single-difference form of :func:`localize_acl_differences`."""
    localize_acl_differences(space, [difference], acl1, acl2)


def _localize_acl(
    space: PacketSpace,
    difference: SemanticDifference,
    dimensions,
    session: LocalizeSession,
) -> None:
    """Attach source/destination address localizations and an example.

    Address vocabularies are the prefix-expressible wildcards of both
    ACLs; discontiguous wildcards make the space non-prefix-generated, in
    which case that dimension degrades to example-only (the paper's
    Campion similarly only emits exhaustive sets for the prefix-shaped
    dimensions).
    """
    difference.extra_localizations = {}
    for label, field, vocabulary, drop in dimensions:
        projected = space.manager.exists(difference.input_set, drop)
        try:
            localization = header_localize(
                projected,
                vocabulary,
                address_prefix_algebra(),
                lambda prefix: _address_pred(space, field, prefix),
                session=session,
                dimension=label,
            )
            difference.extra_localizations[label] = localization
        except HeaderLocalizeError:
            difference.extra_localizations[label] = None

    model = complete_model(difference.input_set, space.manager.num_vars)
    if model is not None:
        packet = space.decode(model)
        support = set(difference.input_set.support())
        difference.example = {}
        if any(index in support for index in space.protocol.var_indices):
            difference.example["protocol"] = IP_PROTOCOL_NAMES.get(
                packet.protocol, str(packet.protocol)
            )
        if any(index in support for index in space.src_port.var_indices):
            difference.example["srcPort"] = str(packet.src_port)
        if any(index in support for index in space.dst_port.var_indices):
            difference.example["dstPort"] = str(packet.dst_port)
        if any(index in support for index in space.icmp_type.var_indices):
            difference.example["icmpType"] = str(packet.icmp_type)


def _address_pred(space: PacketSpace, field, prefix: Prefix) -> Bdd:
    from ..model.acl import IpWildcard

    return space.wildcard_pred(field, IpWildcard.from_prefix(prefix))


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _two_column_table(
    header: Tuple[str, str, str], rows: Sequence[Tuple[str, str, str]]
) -> str:
    """Render a label/left/right table with wrapped multi-line cells."""
    label_width = max([len(header[0])] + [len(r[0]) for r in rows]) if rows else 20

    def cell_lines(text: str) -> List[str]:
        return text.split("\n") if text else [""]

    column1 = max(
        [len(header[1])]
        + [len(line) for r in rows for line in cell_lines(r[1])]
    )
    column2 = max(
        [len(header[2])]
        + [len(line) for r in rows for line in cell_lines(r[2])]
    )
    separator = (
        "+" + "-" * (label_width + 2) + "+" + "-" * (column1 + 2) + "+" + "-" * (column2 + 2) + "+"
    )

    def render_row(row: Tuple[str, str, str]) -> List[str]:
        parts = [cell_lines(row[0]), cell_lines(row[1]), cell_lines(row[2])]
        height = max(len(p) for p in parts)
        lines = []
        for i in range(height):
            label = parts[0][i] if i < len(parts[0]) else ""
            left = parts[1][i] if i < len(parts[1]) else ""
            right = parts[2][i] if i < len(parts[2]) else ""
            lines.append(
                f"| {label.ljust(label_width)} | {left.ljust(column1)} | {right.ljust(column2)} |"
            )
        return lines

    output = [separator]
    output.extend(render_row(header))
    output.append(separator)
    for row in rows:
        output.extend(render_row(row))
        output.append(separator)
    return "\n".join(output)


def _render_localization(localization: Optional[Localization]) -> Tuple[str, str]:
    """(included, excluded) cell text from a localization."""
    if localization is None:
        return "(see example)", ""
    included = "\n".join(str(r) for r in localization.included)
    excluded = "\n".join(str(r) for r in localization.excluded)
    return included, excluded


def render_semantic_difference(difference: SemanticDifference) -> str:
    """One difference as a Table 2 / Table 7 style text table."""
    rows: List[Tuple[str, str, str]] = []
    if difference.kind is ComponentKind.ROUTE_MAP:
        included, excluded = _render_localization(difference.localization)
        rows.append(("Included Prefixes", included, ""))
        rows.append(("Excluded Prefixes", excluded, ""))
        community_localization = difference.extra_localizations.get("communities")
        if community_localization is not None and not community_localization.universal:
            rows.append(("Communities", community_localization.render(), ""))
        for label, value in difference.example.items():
            rows.append((label, value, ""))
        rows.append(("Policy Name", difference.class1.policy_name, difference.class2.policy_name))
    else:
        for label, key in (("srcIP", "srcIp"), ("dstIP", "dstIp")):
            localization = difference.extra_localizations.get(key)
            included, excluded = _render_localization(localization)
            if included or excluded:
                rows.append((f"Included {label}", included, ""))
                if excluded:
                    rows.append((f"Excluded {label}", excluded, ""))
        extra = ", ".join(f"{k}: {v}" for k, v in difference.example.items())
        if extra:
            rows.append(("Example", extra, ""))
        rows.append(("ACL Name", difference.class1.policy_name, difference.class2.policy_name))

    action1, action2 = difference.action_pair()
    rows.append(("Action", action1, action2))
    rows.append(("Text", difference.class1.text(), difference.class2.text()))
    header = ("", difference.router1, difference.router2)
    title = f"[{difference.kind.value}] {difference.context}".strip()
    return title + "\n" + _two_column_table(header, rows)


def render_structural_difference(difference: StructuralDifference) -> str:
    """One structural mismatch as a Table 4 style text table."""
    absent = "None"
    rows = [
        ("Component", difference.component, difference.component),
        (
            difference.attribute.title(),
            difference.value1 if difference.value1 is not None else absent,
            difference.value2 if difference.value2 is not None else absent,
        ),
        (
            "Text",
            difference.source1.render() or absent,
            difference.source2.render() or absent,
        ),
    ]
    header = ("", difference.router1, difference.router2)
    return f"[{difference.kind.value}]\n" + _two_column_table(header, rows)


def _coverage_notes(report: CampionReport) -> List[str]:
    """Degraded-coverage banner lines (aborted components, skipped stanzas)."""
    notes: List[str] = []
    for aborted in report.aborted:
        notes.append(aborted.render())
    for hostname in sorted(report.parse_diagnostics):
        diagnostics = report.parse_diagnostics[hostname]
        notes.append(
            f"note: {hostname}: {len(diagnostics)} stanza(s) skipped by lenient "
            "parsing; coverage is reduced"
        )
        notes.extend(f"  {diagnostic.render()}" for diagnostic in diagnostics)
    return notes


def render_report(report: CampionReport) -> str:
    """The full report for a router pair."""
    sections: List[str] = [
        f"Campion comparison: {report.router1} vs {report.router2}",
        f"Total differences: {report.total_differences()}",
        "",
    ]
    notes = _coverage_notes(report)
    if notes:
        sections.extend(notes)
        sections.append("")
    if report.is_equivalent():
        if notes:
            sections.append(
                "No differences found in the analyzed components "
                "(coverage reduced; see notes above)."
            )
        else:
            sections.append(
                "No differences found: configurations are behaviorally equivalent."
            )
        return "\n".join(sections)
    for index, difference in enumerate(report.semantic, start=1):
        sections.append(f"Difference {index} (semantic)")
        sections.append(render_semantic_difference(difference))
        sections.append("")
    for index, difference in enumerate(report.structural, start=1):
        sections.append(f"Difference {index} (structural)")
        sections.append(render_structural_difference(difference))
        sections.append("")
    for unmatched in report.unmatched:
        sections.append(
            f"[{unmatched.kind.value}] {unmatched.name}: present on "
            f"{unmatched.present_on}, missing on {unmatched.missing_on}"
            + (f" ({unmatched.context})" if unmatched.context else "")
        )
    return "\n".join(sections)
