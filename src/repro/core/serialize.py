"""JSON serialization of Campion reports.

``campion compare --json`` and CI integrations need machine-readable
output; this module renders a :class:`~repro.core.results.CampionReport`
as plain JSON-compatible dictionaries.  The schema mirrors the report
tables: each semantic difference carries its included/excluded ranges,
action pair, text localization (with file/line provenance), and any
examples; structural differences carry component/attribute/values.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..model.types import SourceSpan
from .header_localize import Localization
from .results import CampionReport, SemanticDifference, StructuralDifference

__all__ = [
    "SCHEMA_VERSION",
    "semantic_difference_to_dict",
    "structural_difference_to_dict",
    "report_to_dict",
    "report_to_json",
    "fleet_report_to_dict",
]

# v2: adds "degraded", "aborted" (budget-tripped components), and
# "parse_diagnostics" (stanzas lenient parsing skipped, per router).
# v3: adds fleet-report serialization (fleet_report_to_dict) and is the
# schema stamped into cached per-component diff entries (repro.cache);
# cache entries from older schemas are rejected as stale on read.
# v4: fleet reports gain "notes" (previously dropped on the floor —
# now deterministic, so byte-identity across backends still holds),
# a machine-readable "partial" degradation flag, and per-device
# "coverage" (policy lines exercised by localized diffs vs. untouched
# policy).  Bumping the stamp also invalidates pre-v4 cache entries.
# v5: memo/cache entries gain the localization-replay fields
# ("localized", "provenance", "replay" — see repro.core.replay); the
# report schema itself is unchanged, but the bump invalidates pre-v5
# cache entries so collect mode never replays an entry whose
# localization fields predate the replay protocol.
SCHEMA_VERSION = 5


def _span_to_dict(span: SourceSpan) -> Optional[Dict]:
    if span.is_empty():
        return None
    return {
        "file": span.filename,
        "start_line": span.start_line,
        "end_line": span.end_line,
        "text": list(span.text),
    }


def _localization_to_dict(localization: Optional[Localization]) -> Optional[Dict]:
    if localization is None:
        return None
    return {
        "terms": [
            {"range": str(term.range), "minus": [str(m) for m in term.minus]}
            for term in localization.terms
        ],
        "included": [str(r) for r in localization.included],
        "excluded": [str(r) for r in localization.excluded],
    }


def semantic_difference_to_dict(difference: SemanticDifference) -> Dict:
    """One semantic difference as JSON-compatible dictionaries.

    Hostname-free by construction (hostnames appear only at the report
    top level), so this is also the per-component *cache entry* format
    (:mod:`repro.core.memo`).  Text-localization spans do carry the
    representative pair's file/line provenance, which is why collect
    mode only replays memoized entries whose provenance digest matches
    the current pair (span filenames are then the sole per-device
    field, rewritten at replay — :mod:`repro.core.replay`); other
    non-zero entries replay as *counts* or re-localize live.
    """
    return _semantic_to_dict(difference)


def structural_difference_to_dict(difference: StructuralDifference) -> Dict:
    """One structural difference as JSON-compatible dictionaries
    (hostname-free; see :func:`semantic_difference_to_dict`)."""
    return _structural_to_dict(difference)


def _semantic_to_dict(difference: SemanticDifference) -> Dict:
    action1, action2 = difference.action_pair()
    result = {
        "kind": difference.kind.value,
        "context": difference.context,
        "policy": {
            "router1": difference.class1.policy_name,
            "router2": difference.class2.policy_name,
        },
        "step": {
            "router1": difference.class1.step_name,
            "router2": difference.class2.step_name,
        },
        "action": {"router1": action1, "router2": action2},
        "text": {
            "router1": _span_to_dict(difference.class1.source),
            "router2": _span_to_dict(difference.class2.source),
        },
        "localization": _localization_to_dict(difference.localization),
        "example": dict(difference.example),
    }
    extra = {}
    for key, value in difference.extra_localizations.items():
        if value is None:
            extra[key] = None
        elif isinstance(value, Localization):
            extra[key] = _localization_to_dict(value)
        else:  # CommunityLocalization and future kinds render themselves
            extra[key] = {"rendered": value.render()}
    if extra:
        result["extra_localizations"] = extra
    return result


def _structural_to_dict(difference: StructuralDifference) -> Dict:
    return {
        "kind": difference.kind.value,
        "component": difference.component,
        "attribute": difference.attribute,
        "value": {"router1": difference.value1, "router2": difference.value2},
        "text": {
            "router1": _span_to_dict(difference.source1),
            "router2": _span_to_dict(difference.source2),
        },
    }


def report_to_dict(report: CampionReport) -> Dict:
    """The report as JSON-compatible nested dictionaries."""
    return {
        "schema_version": SCHEMA_VERSION,
        "router1": report.router1,
        "router2": report.router2,
        "equivalent": report.is_equivalent(),
        "degraded": report.is_degraded(),
        "total_differences": report.total_differences(),
        "aborted": [
            {
                "kind": a.kind.value,
                "component": a.component,
                "reason": a.reason,
                "resource": a.resource,
            }
            for a in report.aborted
        ],
        "parse_diagnostics": {
            hostname: [d.to_dict() for d in diagnostics]
            for hostname, diagnostics in sorted(report.parse_diagnostics.items())
        },
        "semantic": [_semantic_to_dict(d) for d in report.semantic],
        "structural": [_structural_to_dict(d) for d in report.structural],
        "unmatched": [
            {
                "kind": u.kind.value,
                "name": u.name,
                "present_on": u.present_on,
                "missing_on": u.missing_on,
                "context": u.context,
            }
            for u in report.unmatched
        ],
    }


def fleet_report_to_dict(report) -> Dict:
    """A :class:`~repro.core.fleet.FleetReport` as JSON-compatible dicts.

    Deliberately timing-free and deterministically ordered (matrix and
    failure entries sorted by hostname pair, notes sorted and deduped
    at the report level), so two runs over the same fleet — cold or
    cache-warm, serial or parallel, symmetry-compressed or not —
    serialize byte-identically.  CI's cache-smoke and symmetry-smoke
    jobs diff exactly this output.  Schema v4 adds ``partial`` (the
    machine-readable degradation flag), ``notes``, and per-device
    ``coverage``; symmetry-compression statistics stay out, like
    timings, precisely to preserve the byte-identity guarantee.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "reference": report.reference,
        "hostnames": list(report.hostnames),
        "partial": report.is_partial(),
        "notes": list(report.notes),
        "matrix": [
            [first, second, count]
            for (first, second), count in sorted(report.matrix.items())
        ],
        "failed_pairs": [
            [first, second, cause]
            for (first, second), cause in sorted(report.failed_pairs.items())
        ],
        "failed_reports": dict(sorted(report.failed_reports.items())),
        "outliers": report.outliers,
        "conforming": report.conforming,
        "coverage": {
            hostname: coverage.to_dict()
            for hostname, coverage in sorted(report.coverage.items())
        },
        "reports": {
            hostname: report_to_dict(pair_report)
            for hostname, pair_report in sorted(report.reports.items())
        },
    }


def report_to_json(report: CampionReport, indent: int = 2) -> str:
    """The report as a JSON string."""
    import json

    return json.dumps(report_to_dict(report), indent=indent, sort_keys=False)
