"""Topology inference and backup-pair discovery across a device set.

Campion's pairing heuristics (§4) lean on "Batfish's inferred topology":
devices whose interfaces sit on the same subnets are adjacent, and
*backup* routers — the unit Scenario 1 audits — are devices that share
(nearly) all of their subnets while having different host addresses.
This module reproduces that inference so a whole network snapshot can
be audited without the operator enumerating pairs by hand:

* :func:`infer_adjacencies` — (device, device, subnet) triples for every
  shared subnet,
* :func:`discover_backup_pairs` — candidate redundant pairs ranked by
  subnet overlap (Jaccard), with a configurable threshold,
* :func:`audit_backup_pairs` — run ConfigDiff over every discovered
  pair, the fully-automatic Scenario 1 workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..model.device import DeviceConfig
from ..model.types import Prefix
from .config_diff import config_diff
from .results import CampionReport

__all__ = [
    "Adjacency",
    "BackupCandidate",
    "infer_adjacencies",
    "discover_backup_pairs",
    "audit_backup_pairs",
]


@dataclass(frozen=True)
class Adjacency:
    """Two devices sharing one subnet (a probable link or LAN)."""

    device1: str
    device2: str
    subnet: Prefix


@dataclass
class BackupCandidate:
    """A probable redundant pair: high subnet overlap, distinct hosts."""

    device1: str
    device2: str
    shared_subnets: FrozenSet[Prefix]
    jaccard: float
    report: CampionReport | None = None

    def describe(self) -> str:
        """One-line candidate summary."""
        return (
            f"{self.device1} <-> {self.device2}: "
            f"{len(self.shared_subnets)} shared subnets, overlap {self.jaccard:.2f}"
        )


def _subnets(device: DeviceConfig) -> FrozenSet[Prefix]:
    return frozenset(
        interface.subnet()
        for interface in device.interfaces.values()
        if interface.subnet() is not None and not interface.shutdown
    )


def infer_adjacencies(devices: Sequence[DeviceConfig]) -> List[Adjacency]:
    """All (device, device, subnet) triples with a shared subnet.

    /32 loopbacks are skipped — they are device-local, not links.
    """
    by_subnet: Dict[Prefix, List[str]] = {}
    for device in devices:
        for subnet in _subnets(device):
            if subnet.length >= 32:
                continue
            by_subnet.setdefault(subnet, []).append(device.hostname)
    adjacencies: List[Adjacency] = []
    for subnet, hostnames in sorted(by_subnet.items()):
        for index, first in enumerate(sorted(hostnames)):
            for second in sorted(hostnames)[index + 1 :]:
                adjacencies.append(Adjacency(first, second, subnet))
    return adjacencies


def discover_backup_pairs(
    devices: Sequence[DeviceConfig], min_overlap: float = 0.8
) -> List[BackupCandidate]:
    """Candidate backup pairs: device pairs whose subnet sets overlap by
    at least ``min_overlap`` (Jaccard index).

    Backup routers live on the same subnets with different host
    addresses, so near-total subnet overlap is the §4 fingerprint of a
    redundant pair.  Each device joins at most one pair (greedy by
    overlap), mirroring how deployments pair devices one-to-one.
    """
    subnet_sets = {device.hostname: _subnets(device) for device in devices}
    scored: List[Tuple[float, str, str, FrozenSet[Prefix]]] = []
    hostnames = sorted(subnet_sets)
    for index, first in enumerate(hostnames):
        for second in hostnames[index + 1 :]:
            union = subnet_sets[first] | subnet_sets[second]
            if not union:
                continue
            shared = subnet_sets[first] & subnet_sets[second]
            jaccard = len(shared) / len(union)
            if jaccard >= min_overlap and shared:
                scored.append((jaccard, first, second, frozenset(shared)))
    scored.sort(key=lambda item: (-item[0], item[1], item[2]))

    taken: set = set()
    pairs: List[BackupCandidate] = []
    for jaccard, first, second, shared in scored:
        if first in taken or second in taken:
            continue
        taken.add(first)
        taken.add(second)
        pairs.append(
            BackupCandidate(
                device1=first, device2=second, shared_subnets=shared, jaccard=jaccard
            )
        )
    return pairs


def audit_backup_pairs(
    devices: Sequence[DeviceConfig], min_overlap: float = 0.8
) -> List[BackupCandidate]:
    """Discover backup pairs and run ConfigDiff on each (Scenario 1,
    fully automatic).  Each candidate's ``report`` is populated."""
    by_name = {device.hostname: device for device in devices}
    candidates = discover_backup_pairs(devices, min_overlap=min_overlap)
    for candidate in candidates:
        candidate.report = config_diff(
            by_name[candidate.device1], by_name[candidate.device2]
        )
    return candidates
