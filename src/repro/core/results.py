"""Result types for Campion's checks.

A Campion run over a router pair produces:

* :class:`SemanticDifference` — one per behaviorally-differing pair of
  paths through two corresponding ACLs or route maps (the quintuple
  ``(i, a₁, a₂, t₁, t₂)`` of §3.1, with HeaderLocalize output attached),
* :class:`StructuralDifference` — one per structural mismatch in a
  stylized component (static routes, BGP/OSPF properties, ...),
* :class:`UnmatchedPolicy` — components present on one router only
  (MatchPolicies reports these; a missing neighbor or ACL is itself a
  difference), and
* :class:`CampionReport` — everything for one router pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd import Bdd
from ..diagnostics import Diagnostic
from ..encoding.classes import EquivalenceClass
from ..model.types import SourceSpan

__all__ = [
    "AbortedAnalysis",
    "ComponentKind",
    "SemanticDifference",
    "StructuralDifference",
    "UnmatchedPolicy",
    "CampionReport",
]


class ComponentKind(enum.Enum):
    """Which configuration component a difference belongs to (Table 1)."""

    ACL = "ACLs"
    ROUTE_MAP = "Route Maps"
    STATIC_ROUTE = "Static Routes"
    CONNECTED_ROUTE = "Connected Routes"
    BGP_PROPERTY = "Other BGP Properties"
    OSPF_PROPERTY = "OSPF Properties"
    ADMIN_DISTANCE = "Administrative Distances"

    def check_used(self) -> str:
        """The check type per Table 1."""
        if self in (ComponentKind.ACL, ComponentKind.ROUTE_MAP):
            return "SemanticDiff"
        return "StructuralDiff"


@dataclass
class SemanticDifference:
    """One behavioral difference between two component paths.

    ``input_set`` is the BDD of inputs treated differently (the paper's
    ``i``); ``class1``/``class2`` carry the actions and text (``a``/``t``);
    ``localization`` fields are filled in by Present/HeaderLocalize; and
    ``example`` holds one concrete witness for the non-exhaustive
    dimensions (e.g. communities — §3.2's "single example").
    """

    kind: ComponentKind
    input_set: Bdd
    class1: EquivalenceClass
    class2: EquivalenceClass
    router1: str = "router1"
    router2: str = "router2"
    context: str = ""
    localization: Optional[object] = None  # Localization over prefix ranges
    extra_localizations: Dict[str, object] = field(default_factory=dict)
    example: Dict[str, str] = field(default_factory=dict)

    @property
    def policy_name(self) -> str:
        """The compared policy's name (Policy Name row)."""
        return self.class1.policy_name

    def action_pair(self) -> Tuple[str, str]:
        """Both sides' action descriptions (Action row)."""
        return _describe_action(self.class1.action), _describe_action(
            self.class2.action
        )


def _describe_action(action: object) -> str:
    """Uniform ACCEPT/REJECT vocabulary for both component kinds (the
    paper's tables use ACCEPT/REJECT for ACLs and route maps alike)."""
    describe = getattr(action, "describe", None)
    if callable(describe):
        return describe()
    from ..model.acl import AclAction

    if isinstance(action, AclAction):
        return "ACCEPT" if action is AclAction.PERMIT else "REJECT"
    return str(action).upper()


@dataclass(frozen=True)
class StructuralDifference:
    """One structural mismatch: a component key/attribute whose value
    differs (or exists on only one side).  ``None`` means "absent"."""

    kind: ComponentKind
    component: str  # e.g. "static route 10.1.1.2/31", "neighbor 10.0.0.1"
    attribute: str  # e.g. "next-hop", "send-community", "presence"
    value1: Optional[str]
    value2: Optional[str]
    source1: SourceSpan = field(default_factory=SourceSpan, compare=False)
    source2: SourceSpan = field(default_factory=SourceSpan, compare=False)
    router1: str = "router1"
    router2: str = "router2"

    def is_presence_diff(self) -> bool:
        """Whether the component exists on only one router."""
        return self.value1 is None or self.value2 is None


@dataclass(frozen=True)
class AbortedAnalysis:
    """One component whose comparison was aborted by a resource budget.

    A BDD blow-up on one pathological route map must not take down the
    whole run: the offending component is reported as *aborted* (with
    the budget that tripped) while every other component's verdict —
    still sound per Theorem 3.3 — stands.
    """

    kind: ComponentKind
    component: str  # e.g. "route map POL", "ACL 101"
    reason: str  # human-readable abort cause
    resource: str = ""  # "nodes" | "deadline" | "" when unknown

    def render(self) -> str:
        """One-line rendering for text reports."""
        return f"[{self.kind.value}] {self.component}: analysis aborted: {self.reason}"


@dataclass(frozen=True)
class UnmatchedPolicy:
    """A policy/structure that MatchPolicies could not pair."""

    kind: ComponentKind
    name: str
    present_on: str  # hostname of the router that has it
    missing_on: str
    context: str = ""


@dataclass
class CampionReport:
    """All differences found between one pair of router configurations."""

    router1: str
    router2: str
    semantic: List[SemanticDifference] = field(default_factory=list)
    structural: List[StructuralDifference] = field(default_factory=list)
    unmatched: List[UnmatchedPolicy] = field(default_factory=list)
    # Components whose analysis tripped a resource budget and was
    # skipped; their verdict is unknown, everything else's stands.
    aborted: List[AbortedAnalysis] = field(default_factory=list)
    # Error-severity parse diagnostics per hostname (lenient parsing
    # skipped stanzas Campion models, so coverage is reduced).
    parse_diagnostics: Dict[str, List[Diagnostic]] = field(default_factory=dict)

    def total_differences(self) -> int:
        """Count of all differences of every kind."""
        return len(self.semantic) + len(self.structural) + len(self.unmatched)

    def is_equivalent(self) -> bool:
        """Campion's verdict: no differences of any kind (Theorem 3.3's
        hypothesis holds, so behavior is guaranteed equivalent).

        An aborted component blocks the claim — its verdict is unknown,
        so the pair cannot be pronounced equivalent.
        """
        return self.total_differences() == 0 and not self.aborted

    def is_degraded(self) -> bool:
        """Whether the verdict covers less than the full configurations
        (budget-aborted components or stanzas lenient parsing skipped)."""
        return bool(self.aborted) or any(
            diagnostics for diagnostics in self.parse_diagnostics.values()
        )

    def by_kind(self, kind: ComponentKind) -> List[object]:
        """All differences belonging to one Table 1 component."""
        result: List[object] = [d for d in self.semantic if d.kind is kind]
        result.extend(d for d in self.structural if d.kind is kind)
        result.extend(d for d in self.unmatched if d.kind is kind)
        return result
