"""Fleet-scale atomization: seed the fleet matrix from one atom universe.

The fleet matrix (:func:`repro.core.fleet.compare_fleet`) asks an O(N²)
question — the difference count of every device pair — and under the
per-pair backends each pairing repays the full cost of encoding and
refining its two partitions.  The :class:`FleetAtomizer` runs once,
before the matrix, and makes the matrix free:

1. split the fleet into topology-connected groups
   (:func:`repro.core.grouping.connected_device_groups`);
2. per group, fold every *distinct* ACL (deduplicated by fingerprint)
   over one shared :class:`~repro.encoding.PacketSpace` into a single
   :class:`~repro.bdd.fleet_atoms.AtomUniverse`, turning each ACL's
   classes into Python-int bitsets;
3. compute the exact difference count of every arising fingerprint pair
   with :func:`~repro.bdd.fleet_atoms.differing_pair_count` — pure
   bitwise work — and seed the :class:`~repro.core.memo.DiffMemo` with
   count-only entries under the same keys the component walk uses;
4. hoist each group's distinct route-map pair diffs through the
   standard per-pair path once (route-map spaces derive their community
   vocabulary from the *pair* of maps, so a shared fleet universe would
   be unsound there — but one memoized run per distinct fingerprint
   pair achieves the same dedup).

The matrix phase then runs unchanged and every intra-group pairing is
a memo replay: ``MatchPolicies`` plus integer arithmetic, zero BDD
applies.  Full report collection (the reference column, ``campion
diff``) recomputes differing components live exactly as the memo
protocol always has, so reports are byte-identical to the per-pair
backends.

ACL-only universes are deliberate: packet spaces have a fixed variable
layout shared by every ACL, so one universe serves any device set.
Anything that trips the shared refinement — the
``CAMPION_ATOM_BUDGET`` atom budget, a BDD node budget, a coverage
violation — falls back *per group* to the per-pair ``atoms`` path: the
group's seeds are simply not written, a perf counter
(``fleet_atoms.budget_fallbacks``) is bumped, and a human-readable note
lands on :attr:`FleetAtomizer.notes` (surfaced as
``FleetReport.notes``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..bdd import AnalysisBudgetExceeded
from ..bdd.atoms import AtomBudgetExceeded, resolve_atom_budget
from ..bdd.fleet_atoms import (
    AtomUniverse,
    UniverseCoverageError,
    differing_pair_count,
)
from ..encoding import PacketSpace, acl_equivalence_classes
from ..model.device import DeviceConfig
from .grouping import connected_device_groups
from .match_policies import match_policies
from .memo import DiffMemo, acl_key, count_entry, route_map_key, semantic_entry
from .present import localize_route_map_difference
from .results import ComponentKind
from .semantic_diff import diff_route_maps
from .setalg import canonical_action_key

__all__ = ["FleetAtomizer", "acl_universe_id"]

#: Version tag baked into universe ids: bump when the universe layout,
#: the packet encoding, or the fold algorithm changes meaning.
_UNIVERSE_VERSION = "acl-universe:v1"

#: fingerprint -> (per-class bitsets over the universe, per-class
#: canonical action keys) — everything a pair count needs.
VectorTable = Dict[str, Tuple[List[int], List]]


def acl_universe_id(fingerprints: Sequence[str]) -> str:
    """Stable id of the ACL atom universe over a fingerprint set.

    Sorted-content addressed: the same distinct ACLs produce the same
    universe (the fold visits them in sorted order), so bitset vectors
    memoized under this id are reusable across fleets and runs within
    one process.
    """
    digest = hashlib.sha256()
    digest.update(_UNIVERSE_VERSION.encode())
    for fingerprint in sorted(fingerprints):
        digest.update(b"\x00")
        digest.update(str(fingerprint).encode())
    return digest.hexdigest()


class FleetAtomizer:
    """Seed a fleet's diff memo from per-group shared atom universes.

    ``seed()`` mutates ``memo`` (count-only ACL seeds via
    :meth:`DiffMemo.put_seed`, full route-map entries via
    :meth:`DiffMemo.put`) and records diagnostics on the instance:
    ``notes`` (per-group fallback messages), ``groups_atomized`` /
    ``groups_fallback`` / ``singleton_groups`` counters, and
    ``universe_sizes`` (universe id → atom count).
    """

    def __init__(
        self,
        devices: Sequence[DeviceConfig],
        memo: DiffMemo,
        exhaustive_communities: bool = False,
        node_limit: Optional[int] = None,
        atom_budget: Optional[int] = None,
    ) -> None:
        self.devices = list(devices)
        self.memo = memo
        self.exhaustive_communities = exhaustive_communities
        self.node_limit = node_limit
        self.atom_budget = atom_budget
        self.notes: List[str] = []
        self.groups_atomized = 0
        self.groups_fallback = 0
        self.singleton_groups = 0
        self.universe_sizes: Dict[str, int] = {}
        self.pairs_seeded = 0

    def seed(self) -> None:
        """Atomize every connected group and seed the memo."""
        with perf.timer("fleet_atoms.seed"):
            for group in connected_device_groups(self.devices):
                if len(group) < 2:
                    # A singleton has no intra-group pairs: nothing to
                    # refine and nothing to seed.
                    self.singleton_groups += 1
                    perf.add("fleet_atoms.singleton_groups")
                    continue
                self._seed_group(group)

    # -- one connected group --------------------------------------------------

    def _seed_group(self, group: List[DeviceConfig]) -> None:
        pairings = [
            (device1, device2, match_policies(device1, device2))
            for index, device1 in enumerate(group)
            for device2 in group[index + 1 :]
        ]

        # Route maps first: hoisting is independent of the ACL universe,
        # so an ACL budget fallback still leaves route maps deduplicated.
        self._hoist_route_maps(pairings)

        fp_to_acl: Dict[str, object] = {}
        for device in group:
            fingerprints = device.fingerprints
            for name, acl in device.acls.items():
                fp_to_acl.setdefault(fingerprints.acls[name], acl)
        if not fp_to_acl:
            self.groups_atomized += 1
            return

        hostnames = ", ".join(device.hostname for device in group)
        try:
            vectors = self._acl_vectors(fp_to_acl)
        except AtomBudgetExceeded as exc:
            perf.add("fleet_atoms.budget_fallbacks")
            self.groups_fallback += 1
            self.notes.append(
                f"fleet atomization of group [{hostnames}]: {exc}; "
                f"falling back to per-pair atoms for this group"
            )
            return
        except (AnalysisBudgetExceeded, UniverseCoverageError) as exc:
            perf.add("fleet_atoms.budget_fallbacks")
            self.groups_fallback += 1
            self.notes.append(
                f"fleet atomization of group [{hostnames}]: {exc}; "
                f"falling back to per-pair atoms for this group"
            )
            return

        counts: Dict[Tuple[str, str], int] = {}
        for device1, device2, pairing in pairings:
            fps1 = device1.fingerprints
            fps2 = device2.fingerprints
            for pair in pairing.acl_pairs:
                fp1 = fps1.acls[pair.name1]
                fp2 = fps2.acls[pair.name2]
                count = counts.get((fp1, fp2))
                if count is None:
                    bitsets1, keys1 = vectors[fp1]
                    bitsets2, keys2 = vectors[fp2]
                    count = differing_pair_count(
                        bitsets1, keys1, bitsets2, keys2
                    )
                    counts[(fp1, fp2)] = counts[(fp2, fp1)] = count
                # Seed both orientations: the matrix compares sorted
                # hostname pairs but the reference column may flip them,
                # and the count is symmetric.
                for key in (acl_key(fp1, fp2), acl_key(fp2, fp1)):
                    if key not in self.memo:
                        self.memo.put_seed(
                            key, count_entry(ComponentKind.ACL, count)
                        )
                        self.pairs_seeded += 1
        self.groups_atomized += 1
        perf.add("fleet_atoms.groups_atomized")

    def _acl_vectors(self, fp_to_acl: Dict[str, object]) -> VectorTable:
        """Bitset vectors for a group's distinct ACLs, memo-cached."""
        universe_id = acl_universe_id(list(fp_to_acl))
        cached = self.memo.get_vectors(universe_id)
        if cached is not None:
            vectors, size = cached
            self.universe_sizes.setdefault(universe_id, size)
            return vectors

        space = PacketSpace()
        if self.node_limit is not None:
            space.manager.set_budget(node_limit=self.node_limit)
        classes_by_fp = {
            fingerprint: acl_equivalence_classes(space, acl)
            for fingerprint, acl in sorted(fp_to_acl.items())
        }
        total_classes = sum(len(c) for c in classes_by_fp.values())
        budget = resolve_atom_budget(self.atom_budget, total_classes, 0)
        universe = AtomUniverse(atom_budget=budget)
        partition_ids: Dict[str, Tuple[int, List]] = {}
        for fingerprint, classes in classes_by_fp.items():
            pid = universe.add_partition([cls.predicate for cls in classes])
            partition_ids[fingerprint] = (
                pid,
                [canonical_action_key(cls.action) for cls in classes],
            )
        vectors: VectorTable = {
            fingerprint: (universe.vector(pid), keys)
            for fingerprint, (pid, keys) in partition_ids.items()
        }
        self.memo.put_vectors(universe_id, (vectors, universe.size))
        self.universe_sizes[universe_id] = universe.size
        perf.add("fleet_atoms.universes")
        perf.add("fleet_atoms.atoms", universe.size)
        perf.add("fleet_atoms.fold_probes", universe.probes)
        return vectors

    def _hoist_route_maps(self, pairings: List) -> None:
        """Run each distinct route-map pair diff once, into the memo.

        Exactly the component walk's route-map path (same key, same
        localization, same entry), so matrix workers replay counts and
        report collection recomputes live — a hoisted entry is
        indistinguishable from one a worker would have written.  A
        budget abort is simply skipped: the owning matrix pair will hit
        it again and record the abort on its own report.
        """
        for device1, device2, pairing in pairings:
            fps1 = device1.fingerprints
            fps2 = device2.fingerprints
            seen = set()
            for pair in pairing.route_map_pairs:
                if (pair.name1, pair.name2) in seen:
                    continue
                seen.add((pair.name1, pair.name2))
                map1 = device1.route_maps.get(pair.name1)
                map2 = device2.route_maps.get(pair.name2)
                if map1 is None or map2 is None:
                    continue  # unmatched: flagged per pair by the walk
                key = route_map_key(
                    fps1.route_maps[pair.name1],
                    fps2.route_maps[pair.name2],
                    self.exhaustive_communities,
                )
                if self.memo.get(key) is not None:
                    continue  # already computed (or warm in the cache)
                try:
                    space, differences = diff_route_maps(
                        map1,
                        map2,
                        router1=device1.hostname,
                        router2=device2.hostname,
                        context=pair.context,
                        node_limit=self.node_limit,
                        set_backend="fleet-atoms",
                    )
                    for difference in differences:
                        localize_route_map_difference(
                            space,
                            difference,
                            map1,
                            map2,
                            exhaustive_communities=self.exhaustive_communities,
                        )
                except AnalysisBudgetExceeded:
                    continue
                self.memo.put(
                    key,
                    semantic_entry(
                        ComponentKind.ROUTE_MAP,
                        differences,
                        context=pair.context,
                    ),
                )
                perf.add("fleet_atoms.route_map_hoists")
