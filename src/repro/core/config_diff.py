"""ConfigDiff — Campion's top-level algorithm (§3).

    func ConfigDiff(C1, C2):
        pairs <- MatchPolicies(C1, C2)
        for (p1, p2) in pairs:
            for d in Diff(p1, p2):           # Semantic- or StructuralDiff
                result.append(Present(d))
        return result

``Diff`` dispatches per Table 1: SemanticDiff for ACLs and route maps,
StructuralDiff for everything else; ``Present`` attaches HeaderLocalize
output and renders.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..model.device import DeviceConfig
from .match_policies import PolicyPairing, match_policies
from .present import localize_acl_difference, localize_route_map_difference
from .results import CampionReport, ComponentKind
from .semantic_diff import diff_acls, diff_route_maps
from .structural_diff import structural_diff_all

__all__ = ["COMPONENT_CHECKS", "config_diff"]

# Table 1: Components supported by Campion and the check used for each.
COMPONENT_CHECKS: Dict[ComponentKind, str] = {
    kind: kind.check_used() for kind in ComponentKind
}


def config_diff(
    device1: DeviceConfig,
    device2: DeviceConfig,
    pairing: Optional[PolicyPairing] = None,
    exhaustive_communities: bool = False,
) -> CampionReport:
    """Find and localize all differences between two router configurations.

    ``pairing`` overrides MatchPolicies' heuristics when supplied (the
    paper allows user-provided component correspondences).
    ``exhaustive_communities`` enables the §4 future-work extension:
    full DNF localization of the community dimension instead of one
    example.
    """
    if pairing is None:
        pairing = match_policies(device1, device2)

    report = CampionReport(router1=device1.hostname, router2=device2.hostname)
    report.unmatched = list(pairing.unmatched)

    seen_route_map_pairs = set()
    for pair in pairing.route_map_pairs:
        dedup_key = (pair.name1, pair.name2)
        if dedup_key in seen_route_map_pairs:
            continue  # the same map pair applied to several neighbors
        seen_route_map_pairs.add(dedup_key)
        map1 = device1.route_maps.get(pair.name1)
        map2 = device2.route_maps.get(pair.name2)
        if map1 is None or map2 is None:
            # A referenced-but-undefined policy behaves as permit-all on
            # IOS; flag it as unmatched rather than guessing semantics.
            from .results import UnmatchedPolicy

            missing_name = pair.name1 if map1 is None else pair.name2
            present_on = device2.hostname if map1 is None else device1.hostname
            missing_on = device1.hostname if map1 is None else device2.hostname
            report.unmatched.append(
                UnmatchedPolicy(
                    kind=ComponentKind.ROUTE_MAP,
                    name=missing_name,
                    present_on=present_on,
                    missing_on=missing_on,
                    context=f"referenced by {pair.context} but not defined",
                )
            )
            continue
        space, differences = diff_route_maps(
            map1,
            map2,
            router1=device1.hostname,
            router2=device2.hostname,
            context=pair.context,
        )
        for difference in differences:
            localize_route_map_difference(
                space,
                difference,
                map1,
                map2,
                exhaustive_communities=exhaustive_communities,
            )
        report.semantic.extend(differences)

    for pair in pairing.acl_pairs:
        acl1 = device1.acls[pair.name1]
        acl2 = device2.acls[pair.name2]
        space, differences = diff_acls(
            acl1,
            acl2,
            router1=device1.hostname,
            router2=device2.hostname,
            context=f"ACL {pair.name1}",
        )
        for difference in differences:
            localize_acl_difference(space, difference, acl1, acl2)
        report.semantic.extend(differences)

    report.structural = structural_diff_all(
        device1, device2, pairing.ospf_interface_pairing
    )
    return report
