"""ConfigDiff — Campion's top-level algorithm (§3).

    func ConfigDiff(C1, C2):
        pairs <- MatchPolicies(C1, C2)
        for (p1, p2) in pairs:
            for d in Diff(p1, p2):           # Semantic- or StructuralDiff
                result.append(Present(d))
        return result

``Diff`` dispatches per Table 1: SemanticDiff for ACLs and route maps,
StructuralDiff for everything else; ``Present`` attaches HeaderLocalize
output and renders.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..bdd import AnalysisBudgetExceeded
from ..model.device import DeviceConfig
from .match_policies import PolicyPairing, match_policies
from .present import localize_acl_difference, localize_route_map_difference
from .results import AbortedAnalysis, CampionReport, ComponentKind
from .semantic_diff import diff_acls, diff_route_maps
from .structural_diff import structural_diff_all

__all__ = ["COMPONENT_CHECKS", "config_diff"]

# Table 1: Components supported by Campion and the check used for each.
COMPONENT_CHECKS: Dict[ComponentKind, str] = {
    kind: kind.check_used() for kind in ComponentKind
}


def _component_label(name1: str, name2: str, prefix: str) -> str:
    """Readable component label covering differently-named pairings."""
    if name1 == name2:
        return f"{prefix} {name1}"
    return f"{prefix} {name1}/{name2}"


def config_diff(
    device1: DeviceConfig,
    device2: DeviceConfig,
    pairing: Optional[PolicyPairing] = None,
    exhaustive_communities: bool = False,
    node_limit: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> CampionReport:
    """Find and localize all differences between two router configurations.

    ``pairing`` overrides MatchPolicies' heuristics when supplied (the
    paper allows user-provided component correspondences).
    ``exhaustive_communities`` enables the §4 future-work extension:
    full DNF localization of the community dimension instead of one
    example.

    ``node_limit`` bounds BDD nodes per compared component and
    ``time_budget`` bounds this whole pair's wall clock; a component
    whose analysis trips either budget is recorded on
    ``report.aborted`` (its verdict is unknown) while every other
    component's result — still sound per Theorem 3.3 — stands.  The
    report also carries both devices' error-severity parse diagnostics
    so downstream consumers can flag reduced coverage.
    """
    if pairing is None:
        pairing = match_policies(device1, device2)

    report = CampionReport(router1=device1.hostname, router2=device2.hostname)
    report.unmatched = list(pairing.unmatched)
    for device in (device1, device2):
        errors = device.parse_errors()
        if errors:
            report.parse_diagnostics[device.hostname] = errors

    deadline = (
        time.monotonic() + time_budget if time_budget is not None else None
    )

    def _remaining(component: str, kind: ComponentKind) -> Optional[float]:
        """Seconds left in the pair budget; records an abort when spent."""
        if deadline is None:
            return None
        left = deadline - time.monotonic()
        if left <= 0:
            report.aborted.append(
                AbortedAnalysis(
                    kind=kind,
                    component=component,
                    reason=f"pair time budget of {time_budget:.1f}s exhausted",
                    resource="deadline",
                )
            )
            return 0.0
        return left

    seen_route_map_pairs = set()
    for pair in pairing.route_map_pairs:
        dedup_key = (pair.name1, pair.name2)
        if dedup_key in seen_route_map_pairs:
            continue  # the same map pair applied to several neighbors
        seen_route_map_pairs.add(dedup_key)
        map1 = device1.route_maps.get(pair.name1)
        map2 = device2.route_maps.get(pair.name2)
        if map1 is None or map2 is None:
            # A referenced-but-undefined policy behaves as permit-all on
            # IOS; flag it as unmatched rather than guessing semantics.
            from .results import UnmatchedPolicy

            missing_name = pair.name1 if map1 is None else pair.name2
            present_on = device2.hostname if map1 is None else device1.hostname
            missing_on = device1.hostname if map1 is None else device2.hostname
            report.unmatched.append(
                UnmatchedPolicy(
                    kind=ComponentKind.ROUTE_MAP,
                    name=missing_name,
                    present_on=present_on,
                    missing_on=missing_on,
                    context=f"referenced by {pair.context} but not defined",
                )
            )
            continue
        component = _component_label(pair.name1, pair.name2, "route map")
        left = _remaining(component, ComponentKind.ROUTE_MAP)
        if left is not None and left <= 0:
            continue
        try:
            space, differences = diff_route_maps(
                map1,
                map2,
                router1=device1.hostname,
                router2=device2.hostname,
                context=pair.context,
                node_limit=node_limit,
                time_budget=left,
            )
            for difference in differences:
                localize_route_map_difference(
                    space,
                    difference,
                    map1,
                    map2,
                    exhaustive_communities=exhaustive_communities,
                )
        except AnalysisBudgetExceeded as exc:
            report.aborted.append(
                AbortedAnalysis(
                    kind=ComponentKind.ROUTE_MAP,
                    component=component,
                    reason=str(exc),
                    resource=exc.resource,
                )
            )
            continue
        report.semantic.extend(differences)

    for pair in pairing.acl_pairs:
        acl1 = device1.acls[pair.name1]
        acl2 = device2.acls[pair.name2]
        component = _component_label(pair.name1, pair.name2, "ACL")
        left = _remaining(component, ComponentKind.ACL)
        if left is not None and left <= 0:
            continue
        try:
            space, differences = diff_acls(
                acl1,
                acl2,
                router1=device1.hostname,
                router2=device2.hostname,
                context=f"ACL {pair.name1}",
                node_limit=node_limit,
                time_budget=left,
            )
            for difference in differences:
                localize_acl_difference(space, difference, acl1, acl2)
        except AnalysisBudgetExceeded as exc:
            report.aborted.append(
                AbortedAnalysis(
                    kind=ComponentKind.ACL,
                    component=component,
                    reason=str(exc),
                    resource=exc.resource,
                )
            )
            continue
        report.semantic.extend(differences)

    report.structural = structural_diff_all(
        device1, device2, pairing.ospf_interface_pairing
    )
    return report
