"""ConfigDiff — Campion's top-level algorithm (§3).

    func ConfigDiff(C1, C2):
        pairs <- MatchPolicies(C1, C2)
        for (p1, p2) in pairs:
            for d in Diff(p1, p2):           # Semantic- or StructuralDiff
                result.append(Present(d))
        return result

``Diff`` dispatches per Table 1: SemanticDiff for ACLs and route maps,
StructuralDiff for everything else; ``Present`` attaches HeaderLocalize
output and renders.

Both entry points run the *same* component walk, optionally through a
:class:`~repro.core.memo.DiffMemo`:

* :func:`config_diff` produces a full live :class:`CampionReport`.  A
  memo hit with zero differences skips the component outright (it would
  contribute nothing to the report); a *localized* hit whose provenance
  digest matches this pair is replayed verbatim with span filenames
  rewritten (:mod:`repro.core.replay`); any other hit is recomputed
  live so localization points at this pair's actual lines.
* :func:`config_diff_summary` produces only the difference *count* (the
  fleet matrix's currency): memo hits of any count are replayed as
  arithmetic, misses are computed exactly once per unique fingerprint
  pair.  Count mode skips HeaderLocalize entirely — localization
  annotates differences (spans, exhaustive sets, examples) but never
  changes how many there are — so the matrix phase pays for
  SemanticDiff only.

Using one walk for both modes is what makes the count-parity invariant
(``config_diff_summary(...) == config_diff(...).total_differences()``)
structural rather than a matter of keeping two loops in sync.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from .. import perf
from ..bdd import AnalysisBudgetExceeded
from ..model.device import DeviceConfig
from .match_policies import PolicyPairing, match_policies
from .memo import (
    DiffMemo,
    acl_key,
    route_map_key,
    semantic_entry,
    structural_entry,
    structural_key,
)
from .present import localize_acl_differences, localize_route_map_differences
from .replay import (
    localization_provenance,
    replay_augmentation,
    replay_semantic_differences,
)
from .results import AbortedAnalysis, CampionReport, ComponentKind
from .semantic_diff import diff_acls, diff_route_maps
from .structural_diff import structural_diff_all

__all__ = ["COMPONENT_CHECKS", "config_diff", "config_diff_summary"]

# Table 1: Components supported by Campion and the check used for each.
COMPONENT_CHECKS: Dict[ComponentKind, str] = {
    kind: kind.check_used() for kind in ComponentKind
}


def _component_label(name1: str, name2: str, prefix: str) -> str:
    """Readable component label covering differently-named pairings."""
    if name1 == name2:
        return f"{prefix} {name1}"
    return f"{prefix} {name1}/{name2}"


def config_diff(
    device1: DeviceConfig,
    device2: DeviceConfig,
    pairing: Optional[PolicyPairing] = None,
    exhaustive_communities: bool = False,
    node_limit: Optional[int] = None,
    time_budget: Optional[float] = None,
    memo: Optional[DiffMemo] = None,
    set_backend: Optional[str] = None,
) -> CampionReport:
    """Find and localize all differences between two router configurations.

    ``pairing`` overrides MatchPolicies' heuristics when supplied (the
    paper allows user-provided component correspondences).
    ``exhaustive_communities`` enables the §4 future-work extension:
    full DNF localization of the community dimension instead of one
    example.

    ``node_limit`` bounds BDD nodes per compared component and
    ``time_budget`` bounds this whole pair's wall clock; a component
    whose analysis trips either budget is recorded on
    ``report.aborted`` (its verdict is unknown) while every other
    component's result — still sound per Theorem 3.3 — stands.  The
    report also carries both devices' error-severity parse diagnostics
    so downstream consumers can flag reduced coverage.

    ``memo`` enables fingerprint-keyed reuse: components whose memoized
    result is *no differences* are skipped (identical report, zero BDD
    work), localized entries matching this pair's provenance are
    replayed without recomputation, and fresh clean results are
    recorded for later pairs — the report itself is identical to a
    memo-less run.

    ``set_backend`` selects the SemanticDiff set-algebra backend by name
    (see :mod:`repro.core.setalg`); ``None`` uses the process default.
    Reports are identical for every backend.
    """
    report, _ = _walk_components(
        device1,
        device2,
        pairing=pairing,
        exhaustive_communities=exhaustive_communities,
        node_limit=node_limit,
        time_budget=time_budget,
        memo=memo,
        collect=True,
        set_backend=set_backend,
    )
    return report


def config_diff_summary(
    device1: DeviceConfig,
    device2: DeviceConfig,
    pairing: Optional[PolicyPairing] = None,
    exhaustive_communities: bool = False,
    node_limit: Optional[int] = None,
    time_budget: Optional[float] = None,
    memo: Optional[DiffMemo] = None,
    set_backend: Optional[str] = None,
) -> int:
    """The pair's total difference count, replaying memoized components.

    Equals ``config_diff(...).total_differences()`` for the same inputs
    (same walk, same SemanticDiff/StructuralDiff on memo misses, no
    HeaderLocalize — localization never changes a difference count);
    with a warm memo a fully-shared pair costs MatchPolicies plus table
    lookups — no BDD work at all.  This is what fleet matrix workers
    run.
    """
    report, replayed = _walk_components(
        device1,
        device2,
        pairing=pairing,
        exhaustive_communities=exhaustive_communities,
        node_limit=node_limit,
        time_budget=time_budget,
        memo=memo,
        collect=False,
        set_backend=set_backend,
    )
    return report.total_differences() + replayed


def _walk_components(
    device1: DeviceConfig,
    device2: DeviceConfig,
    pairing: Optional[PolicyPairing],
    exhaustive_communities: bool,
    node_limit: Optional[int],
    time_budget: Optional[float],
    memo: Optional[DiffMemo],
    collect: bool,
    set_backend: Optional[str] = None,
) -> Tuple[CampionReport, int]:
    """The shared component walk behind both ConfigDiff entry points.

    Returns ``(report, replayed)`` where ``replayed`` counts memoized
    differences that were *not* materialized on the report (non-zero
    hits in count mode); in collect mode it is always 0.
    """
    if pairing is None:
        pairing = match_policies(device1, device2)
    fps1 = device1.fingerprints if memo is not None else None
    fps2 = device2.fingerprints if memo is not None else None

    report = CampionReport(router1=device1.hostname, router2=device2.hostname)
    report.unmatched = list(pairing.unmatched)
    for device in (device1, device2):
        errors = device.parse_errors()
        if errors:
            report.parse_diagnostics[device.hostname] = errors

    deadline = (
        time.monotonic() + time_budget if time_budget is not None else None
    )

    def _remaining(component: str, kind: ComponentKind) -> Optional[float]:
        """Seconds left in the pair budget; records an abort when spent."""
        if deadline is None:
            return None
        left = deadline - time.monotonic()
        if left <= 0:
            report.aborted.append(
                AbortedAnalysis(
                    kind=kind,
                    component=component,
                    reason=f"pair time budget of {time_budget:.1f}s exhausted",
                    resource="deadline",
                )
            )
            return 0.0
        return left

    replayed = 0

    seen_route_map_pairs = set()
    for pair in pairing.route_map_pairs:
        dedup_key = (pair.name1, pair.name2)
        if dedup_key in seen_route_map_pairs:
            continue  # the same map pair applied to several neighbors
        seen_route_map_pairs.add(dedup_key)
        map1 = device1.route_maps.get(pair.name1)
        map2 = device2.route_maps.get(pair.name2)
        if map1 is None or map2 is None:
            # A referenced-but-undefined policy behaves as permit-all on
            # IOS; flag it as unmatched rather than guessing semantics.
            from .results import UnmatchedPolicy

            missing_name = pair.name1 if map1 is None else pair.name2
            present_on = device2.hostname if map1 is None else device1.hostname
            missing_on = device1.hostname if map1 is None else device2.hostname
            report.unmatched.append(
                UnmatchedPolicy(
                    kind=ComponentKind.ROUTE_MAP,
                    name=missing_name,
                    present_on=present_on,
                    missing_on=missing_on,
                    context=f"referenced by {pair.context} but not defined",
                )
            )
            continue
        key = entry = provenance = None
        if memo is not None:
            key = route_map_key(
                fps1.route_maps[pair.name1],
                fps2.route_maps[pair.name2],
                exhaustive_communities,
            )
            entry = memo.get(key)
            if entry is not None:
                if entry["count"] == 0:
                    continue  # nothing to add to any report
                if not collect:
                    replayed += entry["count"]
                    continue
            if collect:
                provenance = localization_provenance(
                    map1, map2, pair.context, pair.name1, pair.name2
                )
            if (
                entry is not None
                and entry.get("localized")
                and entry.get("provenance") == provenance
            ):
                rebuilt = replay_semantic_differences(entry, device1, device2)
                report.semantic.extend(rebuilt)
                perf.add("memo.localization_replays", len(rebuilt))
                continue
            # Otherwise collect mode recomputes live below (a hit whose
            # provenance differs came from a clone at other file
            # offsets; its localization would report the wrong lines).
        component = _component_label(pair.name1, pair.name2, "route map")
        left = _remaining(component, ComponentKind.ROUTE_MAP)
        if left is not None and left <= 0:
            continue
        try:
            space, differences = diff_route_maps(
                map1,
                map2,
                router1=device1.hostname,
                router2=device2.hostname,
                context=pair.context,
                node_limit=node_limit,
                time_budget=left,
                set_backend=set_backend,
            )
            if collect:
                localize_route_map_differences(
                    space,
                    differences,
                    map1,
                    map2,
                    exhaustive_communities=exhaustive_communities,
                    backend=set_backend,
                )
        except AnalysisBudgetExceeded as exc:
            report.aborted.append(
                AbortedAnalysis(
                    kind=ComponentKind.ROUTE_MAP,
                    component=component,
                    reason=str(exc),
                    resource=exc.resource,
                )
            )
            continue  # aborted results are never memoized
        report.semantic.extend(differences)
        if memo is not None:
            if collect:
                localized = semantic_entry(
                    ComponentKind.ROUTE_MAP,
                    differences,
                    context=pair.context,
                    provenance=provenance,
                    replay=replay_augmentation(differences),
                )
                if entry is None:
                    memo.put(key, localized)
                elif not entry.get("localized"):
                    memo.upgrade(key, localized)
            elif entry is None:
                memo.put(
                    key,
                    semantic_entry(
                        ComponentKind.ROUTE_MAP, differences, context=pair.context
                    ),
                )

    for pair in pairing.acl_pairs:
        acl1 = device1.acls[pair.name1]
        acl2 = device2.acls[pair.name2]
        key = entry = provenance = None
        if memo is not None:
            key = acl_key(fps1.acls[pair.name1], fps2.acls[pair.name2])
            entry = memo.get(key)
            if entry is not None:
                if entry["count"] == 0:
                    continue
                if not collect:
                    replayed += entry["count"]
                    continue
            if collect:
                provenance = localization_provenance(
                    acl1, acl2, f"ACL {pair.name1}", pair.name1, pair.name2
                )
            if (
                entry is not None
                and entry.get("localized")
                and entry.get("provenance") == provenance
            ):
                rebuilt = replay_semantic_differences(entry, device1, device2)
                report.semantic.extend(rebuilt)
                perf.add("memo.localization_replays", len(rebuilt))
                continue
        component = _component_label(pair.name1, pair.name2, "ACL")
        left = _remaining(component, ComponentKind.ACL)
        if left is not None and left <= 0:
            continue
        try:
            space, differences = diff_acls(
                acl1,
                acl2,
                router1=device1.hostname,
                router2=device2.hostname,
                context=f"ACL {pair.name1}",
                node_limit=node_limit,
                time_budget=left,
                set_backend=set_backend,
            )
            if collect:
                localize_acl_differences(
                    space, differences, acl1, acl2, backend=set_backend
                )
        except AnalysisBudgetExceeded as exc:
            report.aborted.append(
                AbortedAnalysis(
                    kind=ComponentKind.ACL,
                    component=component,
                    reason=str(exc),
                    resource=exc.resource,
                )
            )
            continue
        report.semantic.extend(differences)
        if memo is not None:
            if collect:
                localized = semantic_entry(
                    ComponentKind.ACL,
                    differences,
                    provenance=provenance,
                    replay=replay_augmentation(differences),
                )
                if entry is None:
                    memo.put(key, localized)
                elif not entry.get("localized"):
                    memo.upgrade(key, localized)
            elif entry is None:
                memo.put(key, semantic_entry(ComponentKind.ACL, differences))

    if memo is not None:
        skey = structural_key(fps1, fps2, pairing.ospf_interface_pairing)
        sentry = memo.get(skey)
        if sentry is not None and sentry["count"] == 0:
            pass  # structurally identical: report.structural stays []
        elif sentry is not None and not collect:
            replayed += sentry["count"]
        else:
            report.structural = structural_diff_all(
                device1, device2, pairing.ospf_interface_pairing
            )
            if sentry is None:
                memo.put(skey, structural_entry(report.structural))
    else:
        report.structural = structural_diff_all(
            device1, device2, pairing.ospf_interface_pairing
        )
    return report, replayed
