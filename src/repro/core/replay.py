"""Replay of localization-bearing memo entries (full-report warm path).

Fingerprint-keyed memo entries (:mod:`repro.core.memo`) historically
replayed only *counts*: the serialized differences carry text spans with
file/line provenance, so handing a previous pair's entry to a new pair
would report the wrong lines.  This module closes that gap so collect
mode can replay too — which is what makes a warm full-report fleet run
as cheap as a count run.

Soundness (the near-symmetry replay theorem, specialized):

* The memo key already guarantees *content* equality — equal
  fingerprints mean SemanticDiff received identical canonical
  components, and SemanticDiff/HeaderLocalize are deterministic, so the
  differences and their localizations are identical.
* The only entry material that is **not** covered by the fingerprint is
  source provenance: line numbers and raw text of every span, plus the
  pair's context/name labels that SemanticDiff threads into each
  difference.  :func:`localization_provenance` hashes exactly that
  residue — *filename-free*, in deterministic span-walk order.  When
  the stored provenance equals the current pair's, every serialized
  field except span filenames is byte-identical to what a live run
  would produce.
* Filenames are the one per-device field, so replay rewrites them to
  the current devices' filenames (the same substitution
  :func:`~repro.core.near_symmetry.replay_report_dict` performs at
  whole-report scale) — after which the rebuilt differences serialize
  byte-identically to a live recomputation.

Replayed differences are facades: ``input_set`` is ``None`` (nothing
downstream of Present consumes the BDD — only the oracle harness does,
and it never replays) and actions/extra localizations are lightweight
objects that reproduce the rendered forms.  Flags that rendering needs
but serialization omits (``is_default``, a community localization's
``universal``) travel in the entry's ``replay`` augmentation block.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..model.types import SourceSpan
from ..encoding.classes import EquivalenceClass
from .coverage import _walk_spans
from .header_localize import FlatTerm, Localization
from .results import ComponentKind, SemanticDifference

__all__ = [
    "localization_provenance",
    "replay_augmentation",
    "replay_semantic_differences",
    "semantic_difference_from_dict",
]


def localization_provenance(
    component1: object,
    component2: object,
    context: str,
    name1: str,
    name2: str,
) -> str:
    """Digest of the pair material *not* covered by the fingerprints.

    Fingerprints hash the span-free canonical form, so two components
    can share a fingerprint while sitting at different lines of their
    files.  This digest covers the residue a serialized difference
    exposes: every reachable source span's line range and raw text
    (walked in the same deterministic order as
    :func:`~repro.core.coverage.policy_spans`) plus the context and
    policy-name labels SemanticDiff threads into each difference.
    Filenames are deliberately excluded — they are rewritten per-device
    at replay time.
    """
    material = {
        "context": context,
        "names": [name1, name2],
        "spans": [
            [
                [span.start_line, span.end_line, list(span.text)]
                for span in _walk_spans(component)
            ]
            for component in (component1, component2)
        ],
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _ReplayedAction:
    """Action facade that reproduces the stored Action-row description."""

    __slots__ = ("_description",)

    def __init__(self, description: str) -> None:
        self._description = description

    def describe(self) -> str:
        return self._description

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"_ReplayedAction({self._description!r})"


@dataclass(frozen=True)
class _ReplayedRendering:
    """A self-rendering extra localization rebuilt from its rendered form
    (e.g. a community localization; ``universal`` restores the rendering
    gate :func:`~repro.core.present.render_semantic_difference` checks)."""

    rendered: str
    universal: bool = False

    def render(self) -> str:
        return self.rendered


def _span_from_dict(data: Optional[Dict], filename: str) -> SourceSpan:
    if data is None:
        return SourceSpan()
    return SourceSpan(
        filename=filename,
        start_line=data["start_line"],
        end_line=data["end_line"],
        text=tuple(data["text"]),
    )


def _localization_from_dict(data: Optional[Dict]) -> Optional[Localization]:
    if data is None:
        return None
    # str-element flat terms: str() is the identity on them, so the
    # rebuilt localization serializes exactly as the original did (the
    # included/excluded properties re-derive from the terms).
    return Localization(
        terms=tuple(
            FlatTerm(range=term["range"], minus=tuple(term["minus"]))
            for term in data["terms"]
        )
    )


def _class_from_dict(
    data: Dict, side: str, filename: str, is_default: bool
) -> EquivalenceClass:
    return EquivalenceClass(
        predicate=None,  # nothing downstream of Present reads it
        action=_ReplayedAction(data["action"][side]),
        policy_name=data["policy"][side],
        step_name=data["step"][side],
        source=_span_from_dict(data["text"][side], filename),
        is_default=is_default,
    )


def semantic_difference_from_dict(
    data: Dict,
    augment: Dict,
    file1: str,
    file2: str,
    router1: str,
    router2: str,
) -> SemanticDifference:
    """Rebuild one serialized difference against the current pair.

    Round-trip invariant (tested):
    ``semantic_difference_to_dict(semantic_difference_from_dict(d, ...))``
    equals ``d`` with span ``file`` fields rewritten to ``file1`` /
    ``file2`` — everything else in the serialized form is covered by
    the fingerprint + provenance match that gates replay.
    """
    defaults = augment.get("is_default", [False, False])
    extras_augment = augment.get("extras", {})
    extra_localizations: Dict[str, object] = {}
    for key, value in data.get("extra_localizations", {}).items():
        if value is None:
            extra_localizations[key] = None
        elif "rendered" in value:
            extra_localizations[key] = _ReplayedRendering(
                rendered=value["rendered"],
                universal=extras_augment.get(key, {}).get("universal", False),
            )
        else:
            extra_localizations[key] = _localization_from_dict(value)
    return SemanticDifference(
        kind=ComponentKind(data["kind"]),
        input_set=None,
        class1=_class_from_dict(data, "router1", file1, defaults[0]),
        class2=_class_from_dict(data, "router2", file2, defaults[1]),
        router1=router1,
        router2=router2,
        context=data["context"],
        localization=_localization_from_dict(data["localization"]),
        extra_localizations=extra_localizations,
        example=dict(data["example"]),
    )


def replay_augmentation(differences: Iterable[SemanticDifference]) -> Dict:
    """The ``replay`` block stored alongside a localized memo entry.

    Carries exactly the flags rendering needs but serialization omits:
    each side's ``is_default`` (the Text row's implicit-default wording)
    and the ``universal`` flag of self-rendering extra localizations.
    """
    semantic = []
    for difference in differences:
        extras = {}
        for key, value in difference.extra_localizations.items():
            if value is None or isinstance(value, Localization):
                continue
            extras[key] = {"universal": bool(getattr(value, "universal", False))}
        semantic.append(
            {
                "is_default": [
                    difference.class1.is_default,
                    difference.class2.is_default,
                ],
                "extras": extras,
            }
        )
    return {"semantic": semantic}


def replay_semantic_differences(
    entry: Dict, device1: object, device2: object
) -> List[SemanticDifference]:
    """Rebuild a localized memo entry's differences for the current pair."""
    augments = entry.get("replay", {}).get("semantic", [])
    rebuilt = []
    for index, data in enumerate(entry["semantic"]):
        augment = augments[index] if index < len(augments) else {}
        rebuilt.append(
            semantic_difference_from_dict(
                data,
                augment,
                file1=device1.filename,
                file2=device2.filename,
                router1=device1.hostname,
                router2=device2.hostname,
            )
        )
    return rebuilt
