"""MatchPolicies — pairing corresponding components across two routers (§4).

Campion compares components pairwise, so it first decides *which* route
map on router 1 corresponds to which on router 2.  The paper's heuristics,
reproduced here:

* **BGP route maps** — match the import (resp. export) policies applied
  to sessions with the same neighbor address; neighbors present on only
  one router are reported.
* **Redistribution route maps** — match by (target protocol, source
  protocol).
* **ACLs** — match by name; unmatched names are reported.
* **OSPF interfaces** — match by name when both routers have it,
  otherwise by equal connected subnet (backup routers usually differ in
  interface addressing but share subnets, hence the mask-based
  heuristic).

Users can override any of this by passing explicit pairs to ConfigDiff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..model.device import DeviceConfig
from ..model.routemap import RouteMap
from ..model.types import int_to_ip
from .results import ComponentKind, UnmatchedPolicy

__all__ = ["RouteMapPair", "AclPair", "PolicyPairing", "match_policies"]


@dataclass(frozen=True)
class RouteMapPair:
    """Two corresponding route maps plus the context that paired them."""

    name1: str
    name2: str
    context: str  # e.g. "export to neighbor 10.0.0.1", "redistribute static into bgp"


@dataclass(frozen=True)
class AclPair:
    name1: str
    name2: str
    context: str = ""


@dataclass
class PolicyPairing:
    """Everything MatchPolicies decided for one router pair."""

    route_map_pairs: List[RouteMapPair] = field(default_factory=list)
    acl_pairs: List[AclPair] = field(default_factory=list)
    ospf_interface_pairing: Dict[str, str] = field(default_factory=dict)
    unmatched: List[UnmatchedPolicy] = field(default_factory=list)


def match_policies(device1: DeviceConfig, device2: DeviceConfig) -> PolicyPairing:
    """Run all pairing heuristics for a router pair."""
    pairing = PolicyPairing()
    _match_bgp_route_maps(device1, device2, pairing)
    _match_redistribution_maps(device1, device2, pairing)
    _match_acls(device1, device2, pairing)
    pairing.ospf_interface_pairing = match_ospf_interfaces(device1, device2)
    return pairing


def _match_bgp_route_maps(
    device1: DeviceConfig, device2: DeviceConfig, pairing: PolicyPairing
) -> None:
    """Pair import/export policies of sessions to the same neighbor.

    A policy applied on one side but not the other still yields a pair —
    against the *identity* route map (modeled as ``None`` name) — handled
    downstream by ConfigDiff, because "one router filters, the other
    does not" is precisely a behavioral difference to report.
    """
    bgp1, bgp2 = device1.bgp, device2.bgp
    if bgp1 is None or bgp2 is None:
        return  # process presence differences come from StructuralDiff
    neighbors1 = bgp1.neighbor_map()
    neighbors2 = bgp2.neighbor_map()
    for peer in sorted(set(neighbors1) & set(neighbors2)):
        neighbor1 = neighbors1[peer]
        neighbor2 = neighbors2[peer]
        for direction in ("import", "export"):
            policy1 = getattr(neighbor1, f"{direction}_policy")
            policy2 = getattr(neighbor2, f"{direction}_policy")
            if policy1 is None and policy2 is None:
                continue
            context = f"{direction} for neighbor {int_to_ip(peer)}"
            if policy1 is not None and policy2 is not None:
                pairing.route_map_pairs.append(RouteMapPair(policy1, policy2, context))
            # One-sided policies are surfaced via neighbor attribute
            # comparison in StructuralDiff ("has-import-policy").

    # Neighbor presence differences (reported here as unmatched since they
    # also block route-map pairing; StructuralDiff reports them too).
    for peer in sorted(set(neighbors1) ^ set(neighbors2)):
        present_on = device1.hostname if peer in neighbors1 else device2.hostname
        missing_on = device2.hostname if peer in neighbors1 else device1.hostname
        pairing.unmatched.append(
            UnmatchedPolicy(
                kind=ComponentKind.ROUTE_MAP,
                name=f"policies of neighbor {int_to_ip(peer)}",
                present_on=present_on,
                missing_on=missing_on,
                context="bgp neighbor missing on one router",
            )
        )


def _match_redistribution_maps(
    device1: DeviceConfig, device2: DeviceConfig, pairing: PolicyPairing
) -> None:
    """Pair redistribution filters by (target protocol, source protocol)."""
    for target, redists1, redists2 in (
        (
            "bgp",
            device1.bgp.redistributions if device1.bgp else (),
            device2.bgp.redistributions if device2.bgp else (),
        ),
        (
            "ospf",
            device1.ospf.redistributions if device1.ospf else (),
            device2.ospf.redistributions if device2.ospf else (),
        ),
    ):
        map1 = {r.from_protocol: r for r in redists1}
        map2 = {r.from_protocol: r for r in redists2}
        for protocol in sorted(set(map1) & set(map2)):
            policy1 = map1[protocol].route_map
            policy2 = map2[protocol].route_map
            if policy1 is not None and policy2 is not None:
                pairing.route_map_pairs.append(
                    RouteMapPair(
                        policy1,
                        policy2,
                        f"redistribute {protocol} into {target}",
                    )
                )


def _match_acls(
    device1: DeviceConfig, device2: DeviceConfig, pairing: PolicyPairing
) -> None:
    """Pair ACLs by name; report one-sided names."""
    names1 = set(device1.acls)
    names2 = set(device2.acls)
    for name in sorted(names1 & names2):
        pairing.acl_pairs.append(AclPair(name, name, "same name"))
    for name in sorted(names1 ^ names2):
        present_on = device1.hostname if name in names1 else device2.hostname
        missing_on = device2.hostname if name in names1 else device1.hostname
        pairing.unmatched.append(
            UnmatchedPolicy(
                kind=ComponentKind.ACL,
                name=name,
                present_on=present_on,
                missing_on=missing_on,
            )
        )


def match_ospf_interfaces(
    device1: DeviceConfig, device2: DeviceConfig
) -> Dict[str, str]:
    """Interface pairing: shared names first, then equal connected subnet.

    Returns a map from router-1 names to router-2 names covering every
    interface the heuristics could pair.  Backup routers' interfaces have
    different addresses but live on the same subnets, so the subnet
    heuristic is what usually fires cross-vendor (§4).
    """
    pairing: Dict[str, str] = {}
    names1 = set(device1.interfaces)
    names2 = set(device2.interfaces)
    for name in sorted(names1 & names2):
        pairing[name] = name

    unmatched1 = sorted(names1 - set(pairing))
    claimed2 = set(pairing.values())
    subnets2: Dict[object, str] = {}
    for name in sorted(names2):
        if name in claimed2:
            continue
        subnet = device2.interfaces[name].subnet()
        if subnet is not None and subnet not in subnets2:
            subnets2[subnet] = name
    for name in unmatched1:
        subnet = device1.interfaces[name].subnet()
        if subnet is None:
            continue
        partner = subnets2.pop(subnet, None)
        if partner is not None:
            pairing[name] = partner
    return pairing
