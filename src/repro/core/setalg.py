"""Set-algebra backends for SemanticDiff's pairwise comparison.

SemanticDiff's job — find every intersecting cross pair of equivalence
classes whose actions differ — is a set-algebra problem, and this module
makes the algebra pluggable:

* :class:`BddBackend` (``"bdd"``) is the historical path: per-action
  union BDDs prune the search to the disagreement region, then the
  surviving classes go through the O(|A|×|B|) pairwise ``intersects``
  loop.
* :class:`AtomsBackend` (``"atoms"``, the default) refines the two
  partitions into atomic predicates once
  (:func:`repro.bdd.atoms.refine_partitions`), represents every class
  and per-action union as a Python-int bitset over atoms, and reads the
  differing pairs straight off the disagreement *mask* — the pairwise
  loop becomes ``int & int``.  The atoms themselves are BDDs built by
  the same engine, so each emitted overlap is the hash-consed node the
  pairwise loop would have produced; HeaderLocalize sees no difference.
  A refinement that would exceed its atom budget transparently falls
  back to the ``bdd`` backend for that pairing (perf counter
  ``setalg.atom_budget_fallbacks``; a human-readable note lands on
  ``AtomsBackend.notes``).

Backend selection resolves explicit argument → process default set via
:func:`set_default_backend` (the CLI's ``--set-backend``) → the
``CAMPION_SET_BACKEND`` environment variable → ``"atoms"``.  Backends
are cross-validated end-to-end by the differential-testing oracle
(``campion selfcheck``) and the equivalence property suite, which assert
identical difference sets, satcounts, and localizations.

Perf counters: ``setalg.atoms`` (atoms materialized), ``setalg.atom_probes``
(refinement intersection probes), ``setalg.bitset_ops`` (bitwise
AND/OR/NOT on atom bitsets), ``setalg.uncovered_remainders`` (class
remainders outside the joint covered space), ``setalg.atom_budget_fallbacks``.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import perf
from ..bdd import Bdd, BddManager
from ..bdd.atoms import AtomBudgetExceeded, iter_set_bits, refine_partitions
from ..encoding.classes import EquivalenceClass

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "SetAlgebraBackend",
    "BddBackend",
    "AtomsBackend",
    "FleetAtomsBackend",
    "canonical_action_key",
    "resolve_backend",
    "set_default_backend",
    "default_backend_name",
    "default_backend",
]

BACKEND_ENV = "CAMPION_SET_BACKEND"
DEFAULT_BACKEND = "atoms"
BACKEND_NAMES = ("bdd", "atoms", "fleet-atoms")

#: A differing class pair and the BDD of the inputs it disagrees on.
DifferingPair = Tuple[EquivalenceClass, EquivalenceClass, Bdd]


def canonical_action_key(action: object):
    """The canonical comparison key of a class's action.

    SemanticDiff compares actions by their canonical *description* when
    the action type provides one (``RouteMapAction.describe()`` renders
    the normalized disposition) and by the action value itself otherwise
    (``AclAction``).  Every comparison site — agreement-region pruning,
    the pairwise loop, the bitset agreement mask, and the differential
    oracle — must use this one key: mixing ``describe()``-keying with
    ``__eq__`` yields spurious or missed differences whenever the two
    disagree.
    """
    return action.describe() if hasattr(action, "describe") else action


def _action_key(cls: EquivalenceClass):
    return canonical_action_key(cls.action)


class SetAlgebraBackend:
    """Protocol: how differing class pairs are found.

    ``differing_pairs`` returns, in deterministic ``(index1, index2)``
    order, every ``(class1, class2, overlap)`` whose predicates
    intersect and whose canonical action keys differ; ``overlap`` is the
    BDD of the shared inputs.  Implementations over the same manager
    must return identical lists — hash-consing makes the overlap nodes
    comparable by identity, and the oracle enforces the rest.
    """

    name = "abstract"

    def differing_pairs(
        self,
        classes1: Sequence[EquivalenceClass],
        classes2: Sequence[EquivalenceClass],
    ) -> List[DifferingPair]:
        """Every intersecting cross pair whose actions differ, in
        ``(index1, index2)`` order, with the overlap BDD."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# The pairwise BDD backend (the historical SemanticDiff inner loop)
# ---------------------------------------------------------------------------


#: Entries kept per manager in the union memo.  A pairing computes the
#: unions for two class lists; fleet runs reuse one side across many
#: peers, so a handful of slots captures all the reuse while bounding
#: the memo for long-lived managers.
_UNION_CACHE_SIZE = 8

# Per-manager memo of per-action unions, keyed by the identity of the
# class list handed to SemanticDiff: fleet comparisons and repeated
# pairings diff the *same* partition against many peers, and the unions
# only depend on one side.  The outer WeakKeyDictionary lets a manager
# (and every BDD in it) be collected once its comparison is done — to
# keep that true, the memo stores raw node ids, never Bdd handles: a
# handle's ``.manager`` attribute would strongly reference the weak key
# through the value and pin the manager (and its caches) forever.
# Each inner memo is a small LRU (an OrderedDict in recency order): one
# partition diffed against many peers would otherwise accumulate an
# entry per distinct class-list key for the manager's whole lifetime.
_union_cache: "weakref.WeakKeyDictionary[BddManager, OrderedDict]" = (
    weakref.WeakKeyDictionary()
)


def _action_unions(classes: Sequence[EquivalenceClass]) -> Dict:
    """Map each action to the union of its classes' predicates, memoized.

    The memo key is the (node id, action) sequence of the class list, so
    two calls over the same partition — however the caller rebuilt the
    list object — share one set of ``disjoin`` results.
    """
    manager = classes[0].predicate.manager
    per_manager = _union_cache.get(manager)
    if per_manager is None:
        per_manager = _union_cache.setdefault(manager, OrderedDict())
    key = tuple((cls.predicate.node, _action_key(cls)) for cls in classes)
    union_nodes = per_manager.get(key)
    if union_nodes is not None:
        perf.add("semantic_diff.union_cache_hits")
        per_manager.move_to_end(key)
    else:
        by_action: Dict = {}
        for cls in classes:
            by_action.setdefault(_action_key(cls), []).append(cls.predicate)
        union_nodes = {
            action: manager.disjoin(predicates).node
            for action, predicates in by_action.items()
        }
        per_manager[key] = union_nodes
        while len(per_manager) > _UNION_CACHE_SIZE:
            per_manager.popitem(last=False)
            perf.add("semantic_diff.union_cache_evictions")
    return {action: Bdd(manager, node) for action, node in union_nodes.items()}


def _disagreement_region(
    classes1: Sequence[EquivalenceClass], classes2: Sequence[EquivalenceClass]
) -> Bdd:
    """The set of inputs on which the two partitions' actions differ.

    Computed as the complement of the agreement region
    ``∪_a (U1_a ∧ U2_a)`` where ``U_a`` unions the classes taking action
    ``a``.  This costs O(n) BDD operations and lets the pairwise loop
    skip every class that only overlaps agreeing classes — on
    nearly-equivalent 10,000-rule ACLs (§5.4) that prunes the quadratic
    comparison down to the handful of genuinely differing paths.
    """
    manager = classes1[0].predicate.manager
    agree = manager.false
    unions1 = _action_unions(classes1)
    unions2 = _action_unions(classes2)
    for key, union1 in unions1.items():
        union2 = unions2.get(key)
        if union2 is None:
            continue
        agree = agree | (union1 & union2)
    return ~agree


class BddBackend(SetAlgebraBackend):
    """Disagreement-region pruning plus the pairwise ``intersects`` loop."""

    name = "bdd"

    def differing_pairs(
        self,
        classes1: Sequence[EquivalenceClass],
        classes2: Sequence[EquivalenceClass],
    ) -> List[DifferingPair]:
        """Prune to the disagreement region, then compare pairwise."""
        pairs: List[DifferingPair] = []
        disagree = _disagreement_region(classes1, classes2)
        if disagree.is_false():
            return pairs
        pairs_compared = 0
        # Compare actions with the same canonical key the agreement-region
        # pruning used: keying one side by ``describe()`` and the other by
        # ``__eq__`` emits spurious differences inside the agreement region
        # (and misses real ones) whenever the two notions disagree.
        candidates2 = [
            (cls, _action_key(cls))
            for cls in classes2
            if cls.predicate.intersects(disagree)
        ]
        for class1 in classes1:
            if not class1.predicate.intersects(disagree):
                continue
            key1 = _action_key(class1)
            for class2, key2 in candidates2:
                if key1 == key2:
                    continue
                pairs_compared += 1
                overlap = class1.predicate & class2.predicate
                if overlap.is_false():
                    continue
                pairs.append((class1, class2, overlap))
        perf.add("semantic_diff.pairs_compared", pairs_compared)
        return pairs


# ---------------------------------------------------------------------------
# The atomic-predicate bitset backend
# ---------------------------------------------------------------------------


class AtomsBackend(SetAlgebraBackend):
    """Joint atom refinement, then pure bitset algebra.

    Because both class lists are partitions, every atom of the joint
    refinement is exactly one cross intersection ``p_i ∧ q_j`` — so the
    atoms *are* the candidate overlaps, and the quadratic loop reduces
    to masking out the atoms whose owning classes agree.  The agreement
    mask is built from per-action union bitsets (bitwise OR of the
    owning classes' bitsets) exactly mirroring the ``bdd`` backend's
    agreement region; both backends therefore emit identical pair lists
    with identical (hash-consed) overlap BDDs.

    ``atom_budget`` bounds the refinement (``None`` resolves through
    ``CAMPION_ATOM_BUDGET`` and the size-relative default); exceeding it
    falls back to :class:`BddBackend` for that pairing, recording the
    ``setalg.atom_budget_fallbacks`` counter and a note on ``notes``.
    """

    name = "atoms"

    def __init__(self, atom_budget: Optional[int] = None) -> None:
        self.atom_budget = atom_budget
        #: Human-readable diagnostics for budget fallbacks, newest last.
        self.notes: List[str] = []

    def differing_pairs(
        self,
        classes1: Sequence[EquivalenceClass],
        classes2: Sequence[EquivalenceClass],
    ) -> List[DifferingPair]:
        """Refine to atoms, then read pairs off the disagreement mask."""
        try:
            refinement = refine_partitions(
                [cls.predicate for cls in classes1],
                [cls.predicate for cls in classes2],
                atom_budget=self.atom_budget,
            )
        except AtomBudgetExceeded as exc:
            perf.add("setalg.atom_budget_fallbacks")
            note = f"{exc}; falling back to the bdd backend for this pairing"
            self.notes.append(note)
            return BddBackend().differing_pairs(classes1, classes2)
        perf.add("setalg.atoms", len(refinement.atoms))
        perf.add("setalg.atom_probes", refinement.probes)
        if refinement.uncovered:
            perf.add("setalg.uncovered_remainders", refinement.uncovered)

        # Per-action union bitsets on each side: OR over that action's
        # class bitsets (the bitset analogue of _action_unions).
        bitset_ops = 0
        unions1: Dict[object, int] = {}
        for index, cls in enumerate(classes1):
            bits = refinement.bitsets1[index]
            if bits:
                key = _action_key(cls)
                unions1[key] = unions1.get(key, 0) | bits
                bitset_ops += 1
        unions2: Dict[object, int] = {}
        for index, cls in enumerate(classes2):
            bits = refinement.bitsets2[index]
            if bits:
                key = _action_key(cls)
                unions2[key] = unions2.get(key, 0) | bits
                bitset_ops += 1

        # Agreement mask: atoms both of whose owners take the same
        # action; everything else is the disagreement mask — one set bit
        # per differing pair, no pairwise loop at all.
        agree = 0
        for key, bits1 in unions1.items():
            bits2 = unions2.get(key)
            if bits2 is not None:
                agree |= bits1 & bits2
                bitset_ops += 2
        mask = refinement.all_atoms_mask & ~agree
        bitset_ops += 2
        perf.add("setalg.bitset_ops", bitset_ops)

        indexed = [
            (refinement.owner1[atom], refinement.owner2[atom], atom)
            for atom in iter_set_bits(mask)
        ]
        # The cursor scan records atoms in rotated probe order; sort to
        # the (index1, index2) order the pairwise loop emits.
        indexed.sort()
        return [
            (classes1[i], classes2[j], refinement.atoms[atom])
            for i, j, atom in indexed
        ]


class FleetAtomsBackend(AtomsBackend):
    """The ``"fleet-atoms"`` backend: fleet-level seeding, per-pair atoms.

    The fleet-scale work happens *above* this protocol:
    :class:`repro.core.fleet_atoms.FleetAtomizer` folds every device of
    a connected group into one shared atom universe and seeds the diff
    memo with exact pair counts before the matrix runs, so matrix
    pairings under this backend never reach ``differing_pairs`` at all.
    When a pairing does run live — full report collection, cross-group
    pairs, or a group that fell back on budget — it behaves exactly like
    :class:`AtomsBackend`: the per-pair refinement produces the same
    differences the universe counts were derived from.
    """

    name = "fleet-atoms"


# ---------------------------------------------------------------------------
# Backend resolution
# ---------------------------------------------------------------------------


BackendSpec = Union[None, str, SetAlgebraBackend]

#: Process-wide default override (the CLI's ``--set-backend``); ``None``
#: defers to the environment variable, then to ``DEFAULT_BACKEND``.
_default_spec: Optional[str] = None


def _validate_name(name: str) -> str:
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown set-algebra backend {name!r}; "
            f"expected one of {', '.join(BACKEND_NAMES)}"
        )
    return name


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-default backend name."""
    global _default_spec
    _default_spec = None if name is None else _validate_name(name)


def default_backend_name() -> str:
    """The backend name an unqualified comparison resolves to."""
    if _default_spec is not None:
        return _default_spec
    raw = os.environ.get(BACKEND_ENV, "").strip()
    if raw:
        return _validate_name(raw)
    return DEFAULT_BACKEND


class default_backend:
    """Context manager scoping :func:`set_default_backend` to a block."""

    def __init__(self, name: Optional[str]) -> None:
        self._name = name
        self._previous: Optional[str] = None

    def __enter__(self) -> "default_backend":
        global _default_spec
        self._previous = _default_spec
        set_default_backend(self._name)
        return self

    def __exit__(self, *exc_info) -> None:
        global _default_spec
        _default_spec = self._previous


def resolve_backend(spec: BackendSpec = None) -> SetAlgebraBackend:
    """Resolve a backend spec to an instance.

    ``spec`` may be a backend instance (returned as-is), a name from
    ``BACKEND_NAMES``, or ``None`` — which resolves through the process
    default, then ``CAMPION_SET_BACKEND``, then ``DEFAULT_BACKEND``.
    Name specs get a fresh instance, so fallback notes are scoped to one
    comparison's caller.
    """
    if isinstance(spec, SetAlgebraBackend):
        return spec
    name = default_backend_name() if spec is None else _validate_name(spec)
    if name == "bdd":
        return BddBackend()
    if name == "fleet-atoms":
        return FleetAtomsBackend()
    return AtomsBackend()
