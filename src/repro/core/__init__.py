"""Campion core: SemanticDiff, StructuralDiff, HeaderLocalize, ConfigDiff."""

from .community_localize import (
    CommunityCondition,
    CommunityLocalization,
    localize_communities,
)
from .config_diff import COMPONENT_CHECKS, config_diff
from .fleet import FleetReport, compare_fleet
from .grouping import IssueGroup, group_differences
from .topology import (
    Adjacency,
    BackupCandidate,
    audit_backup_pairs,
    discover_backup_pairs,
    infer_adjacencies,
)
from .ddnf import (
    DdnfDag,
    DdnfNode,
    RangeAlgebra,
    address_prefix_algebra,
    build_dag,
    close_under_intersection,
    prefix_range_algebra,
)
from .header_localize import (
    FlatTerm,
    GetMatchStats,
    HeaderLocalizeError,
    Localization,
    MatchTerm,
    flatten_terms,
    get_match,
    header_localize,
)
from .match_policies import AclPair, PolicyPairing, RouteMapPair, match_policies
from .parallel import WORKERS_ENV, diff_pairs, pairwise_counts, resolve_workers
from .present import (
    localize_acl_difference,
    localize_route_map_difference,
    render_report,
    render_semantic_difference,
    render_structural_difference,
)
from .results import (
    CampionReport,
    ComponentKind,
    SemanticDifference,
    StructuralDifference,
    UnmatchedPolicy,
)
from .semantic_diff import diff_acls, diff_route_maps, semantic_diff_classes
from .serialize import report_to_dict, report_to_json
from .structural_diff import (
    diff_admin_distances,
    diff_bgp_properties,
    diff_connected_routes,
    diff_ospf_properties,
    diff_static_routes,
    structural_diff_all,
)

__all__ = [
    "AclPair",
    "Adjacency",
    "BackupCandidate",
    "CampionReport",
    "CommunityCondition",
    "CommunityLocalization",
    "COMPONENT_CHECKS",
    "ComponentKind",
    "DdnfDag",
    "DdnfNode",
    "FlatTerm",
    "FleetReport",
    "GetMatchStats",
    "HeaderLocalizeError",
    "IssueGroup",
    "Localization",
    "MatchTerm",
    "PolicyPairing",
    "RangeAlgebra",
    "RouteMapPair",
    "SemanticDifference",
    "StructuralDifference",
    "UnmatchedPolicy",
    "WORKERS_ENV",
    "address_prefix_algebra",
    "audit_backup_pairs",
    "build_dag",
    "close_under_intersection",
    "compare_fleet",
    "config_diff",
    "diff_acls",
    "diff_pairs",
    "discover_backup_pairs",
    "diff_admin_distances",
    "diff_bgp_properties",
    "diff_connected_routes",
    "diff_ospf_properties",
    "diff_route_maps",
    "diff_static_routes",
    "flatten_terms",
    "get_match",
    "group_differences",
    "header_localize",
    "infer_adjacencies",
    "localize_acl_difference",
    "localize_communities",
    "localize_route_map_difference",
    "match_policies",
    "pairwise_counts",
    "prefix_range_algebra",
    "resolve_workers",
    "render_report",
    "report_to_dict",
    "report_to_json",
    "render_semantic_difference",
    "render_structural_difference",
    "semantic_diff_classes",
    "structural_diff_all",
]
