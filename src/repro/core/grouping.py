"""Grouping raw outputs into underlying issues (Table 8's two columns).

Campion partitions by path, so "a single underlying difference in the
configuration [can] result in multiple lines of outputted differences"
(§5.2) — the paper therefore reports two counts per route map:
*Outputted Differences* (raw class pairs) and *Differences Reported*
(distinct issues sent to operators).  This module mechanizes the
grouping the authors did by hand with a structural rule:

    two raw differences are one issue when they are anchored at the
    same clause of the same router **and** exhibit the same action
    disagreement.

Rationale: when one clause of router A disagrees identically with
several paths of router B (because B's "everything else" is split over
several terms), the operator perceives a single issue — the paper's
Export 5 case, where one missing prefix produced two outputs across two
Juniper terms.  Conversely, the same clause disagreeing *differently*
(accept-with-set vs plain accept) flags genuinely distinct issues, so
Export 1's five outputs stay five.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..model.device import DeviceConfig
from .results import SemanticDifference

__all__ = ["IssueGroup", "connected_device_groups", "group_differences"]

GroupKey = Tuple[str, str, str, str]


def connected_device_groups(
    devices: Sequence[DeviceConfig],
) -> List[List[DeviceConfig]]:
    """Partition a fleet into topology-connected device groups.

    Two devices are connected when Batfish-style topology inference
    (:func:`~repro.core.topology.infer_adjacencies`) puts them on a
    shared subnet; groups are the transitive closure of that relation.
    Fleet-scale atomization builds one shared atom universe per group —
    devices that never share a link don't belong in one universe, and
    keeping the universes separate keeps each one small.

    Two special cases:

    * devices with **no** link subnets at all (pure policy snapshots,
      e.g. ACL-only gateway configs) are topology-*blind* — inference
      can't tell who they talk to, so they are conservatively placed in
      one shared group together;
    * devices that do advertise subnets but share none are genuine
      singletons and come back as one-element groups (a singleton has
      no intra-group pairs, so callers skip atomizing it).

    Groups and their members are sorted by hostname so the output is
    deterministic.
    """
    from .topology import _subnets, infer_adjacencies

    by_name = {device.hostname: device for device in devices}
    parent: Dict[str, str] = {name: name for name in by_name}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(first: str, second: str) -> None:
        root1, root2 = find(first), find(second)
        if root1 != root2:
            parent[max(root1, root2)] = min(root1, root2)

    for adjacency in infer_adjacencies(devices):
        union(adjacency.device1, adjacency.device2)

    blind = [
        device.hostname
        for device in devices
        if not any(
            subnet.length < 32 for subnet in _subnets(device)
        )
    ]
    for hostname in blind[1:]:
        union(blind[0], hostname)

    members: Dict[str, List[str]] = {}
    for name in sorted(by_name):
        members.setdefault(find(name), []).append(name)
    return [
        [by_name[name] for name in group]
        for _, group in sorted(members.items())
    ]


@dataclass
class IssueGroup:
    """One underlying issue: the raw differences attributed to it."""

    key: GroupKey
    differences: List[SemanticDifference] = field(default_factory=list)

    @property
    def outputted(self) -> int:
        """How many raw outputs this issue produced."""
        return len(self.differences)

    def describe(self) -> str:
        """One-line issue summary naming the anchoring clause."""
        side, clause, action1, action2 = self.key
        flat1 = action1.replace("\n", " / ")
        flat2 = action2.replace("\n", " / ")
        return (
            f"{side} clause {clause!r}: {flat1} vs {flat2} "
            f"({self.outputted} outputted)"
        )


def _anchor_side(difference: SemanticDifference) -> Tuple[str, str]:
    """The (side, clause) likely responsible for a difference.

    The non-default clause is the culprit candidate; when both sides
    are specific, prefer the clause with match conditions over a
    catch-all, then router1 (the reference config in replacement
    workflows).
    """
    class1, class2 = difference.class1, difference.class2
    if class1.is_default and not class2.is_default:
        return ("router2", class2.step_name)
    if class2.is_default and not class1.is_default:
        return ("router1", class1.step_name)
    return ("router1", class1.step_name)


def group_differences(differences: Sequence[SemanticDifference]) -> List[IssueGroup]:
    """Cluster raw differences into underlying issues.

    The grouping key is (anchor side, anchor clause, action pair);
    ordering follows first appearance so issue numbering is stable.
    """
    groups: Dict[GroupKey, IssueGroup] = {}
    ordered: List[IssueGroup] = []
    for difference in differences:
        side, clause = _anchor_side(difference)
        action1, action2 = difference.action_pair()
        key = (side, clause, action1, action2)
        group = groups.get(key)
        if group is None:
            group = IssueGroup(key=key)
            groups[key] = group
            ordered.append(group)
        group.differences.append(difference)
    return ordered
