"""The ddNF-style containment DAG over prefix ranges (§3.2, Figure 3).

HeaderLocalize expresses an affected input set in terms of the prefix
ranges appearing in the two configurations.  This module builds the data
structure that makes the minimal representation computable: a DAG whose
nodes are the configurations' prefix ranges (plus the universe, closed
under intersection) and whose edges are *immediate* strict containments.

The DAG is generic over the range type so the same machinery localizes
route-map differences (elements are :class:`~repro.model.types.PrefixRange`)
and ACL differences (elements are :class:`~repro.model.types.Prefix`
denoting address sets).  An element type must supply:

* ``contains(a, b)`` — set containment of denoted sets,
* ``intersect(a, b)`` — the denoted intersection as another element, or
  ``None`` when empty (prefix ranges and prefixes are both closed under
  nonempty intersection, which property (3) of the paper requires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Hashable, List, Optional, Sequence, Set, TypeVar

from ..model.types import Prefix, PrefixRange

__all__ = [
    "DdnfNode",
    "DdnfDag",
    "build_dag",
    "prefix_range_algebra",
    "address_prefix_algebra",
    "RangeAlgebra",
]

ElementT = TypeVar("ElementT", bound=Hashable)


@dataclass(frozen=True)
class RangeAlgebra(Generic[ElementT]):
    """The operations the DAG needs from its element type."""

    universe: ElementT
    contains: Callable[[ElementT, ElementT], bool]
    intersect: Callable[[ElementT, ElementT], Optional[ElementT]]


def prefix_range_algebra() -> RangeAlgebra[PrefixRange]:
    """Prefix ranges under range containment/intersection (route maps)."""
    return RangeAlgebra(
        universe=PrefixRange.universe(),
        contains=lambda a, b: a.contains_range(b),
        intersect=lambda a, b: a.intersect(b),
    )


def _prefix_intersect(a: Prefix, b: Prefix) -> Optional[Prefix]:
    if a.contains_prefix(b):
        return b
    if b.contains_prefix(a):
        return a
    return None


def address_prefix_algebra() -> RangeAlgebra[Prefix]:
    """Prefixes as *address sets* (ACL source/destination localization)."""
    return RangeAlgebra(
        universe=Prefix(0, 0),
        contains=lambda a, b: a.contains_prefix(b),
        intersect=_prefix_intersect,
    )


@dataclass
class DdnfNode(Generic[ElementT]):
    """One DAG node: a unique range label plus immediate-containment edges."""

    label: ElementT
    children: List["DdnfNode[ElementT]"] = field(default_factory=list)

    def is_leaf(self) -> bool:
        """Whether this node has no children."""
        return not self.children


class DdnfDag(Generic[ElementT]):
    """The containment DAG with the four properties of §3.2.

    (1) rooted at the universe, (2) unique labels, (3) label set closed
    under intersection and containing the input ranges, (4) edges are
    immediate strict containments.
    """

    def __init__(self, root: DdnfNode[ElementT], nodes: Dict[ElementT, DdnfNode[ElementT]]):
        self.root = root
        self.nodes = nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, label: ElementT) -> DdnfNode[ElementT]:
        """The node labeled ``label``."""
        return self.nodes[label]

    def topological(self) -> List[DdnfNode[ElementT]]:
        """Nodes in a parent-before-child order."""
        order: List[DdnfNode[ElementT]] = []
        visited: Set[int] = set()

        def visit(node: DdnfNode[ElementT]) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            order.append(node)
            for child in node.children:
                visit(child)

        visit(self.root)
        return order


def close_under_intersection(
    ranges: Sequence[ElementT], algebra: RangeAlgebra[ElementT]
) -> List[ElementT]:
    """The input ranges plus the universe, closed under intersection.

    For prefix-structured elements the intersection of two elements is
    one of them or empty unless one contains the other, so closure
    converges after a single pairwise pass; we iterate to a fixpoint
    anyway to stay correct for any conforming algebra.
    """
    closed: Set[ElementT] = set(ranges)
    closed.add(algebra.universe)
    worklist: List[ElementT] = list(closed)
    while worklist:
        current = worklist.pop()
        for other in list(closed):
            meet = algebra.intersect(current, other)
            if meet is not None and meet not in closed:
                closed.add(meet)
                worklist.append(meet)
    return sorted(closed)  # deterministic construction order


def build_dag(
    ranges: Sequence[ElementT], algebra: RangeAlgebra[ElementT]
) -> DdnfDag[ElementT]:
    """Build the immediate-containment DAG over the closed range set."""
    labels = close_under_intersection(ranges, algebra)
    nodes: Dict[ElementT, DdnfNode[ElementT]] = {
        label: DdnfNode(label) for label in labels
    }

    # strict_supersets[x] = labels strictly containing x.
    strict_supersets: Dict[ElementT, List[ElementT]] = {label: [] for label in labels}
    for outer in labels:
        for inner in labels:
            if outer != inner and algebra.contains(outer, inner):
                strict_supersets[inner].append(outer)

    # Edge (m, n) iff m strictly contains n with no label strictly between.
    for inner in labels:
        supersets = strict_supersets[inner]
        for parent in supersets:
            immediate = True
            for middle in supersets:
                if middle == parent:
                    continue
                if algebra.contains(parent, middle):
                    # parent > middle > inner, so parent is not immediate.
                    immediate = False
                    break
            if immediate:
                nodes[parent].children.append(nodes[inner])

    root = nodes[algebra.universe]
    for node in nodes.values():
        node.children.sort(key=lambda child: repr(child.label))
    return DdnfDag(root, nodes)
