"""The ddNF-style containment DAG over prefix ranges (§3.2, Figure 3).

HeaderLocalize expresses an affected input set in terms of the prefix
ranges appearing in the two configurations.  This module builds the data
structure that makes the minimal representation computable: a DAG whose
nodes are the configurations' prefix ranges (plus the universe, closed
under intersection) and whose edges are *immediate* strict containments.

The DAG is generic over the range type so the same machinery localizes
route-map differences (elements are :class:`~repro.model.types.PrefixRange`)
and ACL differences (elements are :class:`~repro.model.types.Prefix`
denoting address sets).  An element type must supply:

* ``contains(a, b)`` — set containment of denoted sets,
* ``intersect(a, b)`` — the denoted intersection as another element, or
  ``None`` when empty (prefix ranges and prefixes are both closed under
  nonempty intersection, which property (3) of the paper requires).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Hashable, List, Optional, Sequence, Set, Tuple, TypeVar

from .. import perf
from ..model.types import Prefix, PrefixRange

__all__ = [
    "DdnfNode",
    "DdnfDag",
    "build_dag",
    "cached_dag",
    "dag_cache_clear",
    "prefix_range_algebra",
    "address_prefix_algebra",
    "RangeAlgebra",
]

ElementT = TypeVar("ElementT", bound=Hashable)


@dataclass(frozen=True)
class RangeAlgebra(Generic[ElementT]):
    """The operations the DAG needs from its element type."""

    universe: ElementT
    contains: Callable[[ElementT, ElementT], bool]
    intersect: Callable[[ElementT, ElementT], Optional[ElementT]]


def prefix_range_algebra() -> RangeAlgebra[PrefixRange]:
    """Prefix ranges under range containment/intersection (route maps)."""
    return RangeAlgebra(
        universe=PrefixRange.universe(),
        contains=lambda a, b: a.contains_range(b),
        intersect=lambda a, b: a.intersect(b),
    )


def _prefix_intersect(a: Prefix, b: Prefix) -> Optional[Prefix]:
    if a.contains_prefix(b):
        return b
    if b.contains_prefix(a):
        return a
    return None


def address_prefix_algebra() -> RangeAlgebra[Prefix]:
    """Prefixes as *address sets* (ACL source/destination localization)."""
    return RangeAlgebra(
        universe=Prefix(0, 0),
        contains=lambda a, b: a.contains_prefix(b),
        intersect=_prefix_intersect,
    )


@dataclass
class DdnfNode(Generic[ElementT]):
    """One DAG node: a unique range label plus immediate-containment edges."""

    label: ElementT
    children: List["DdnfNode[ElementT]"] = field(default_factory=list)

    def is_leaf(self) -> bool:
        """Whether this node has no children."""
        return not self.children


class DdnfDag(Generic[ElementT]):
    """The containment DAG with the four properties of §3.2.

    (1) rooted at the universe, (2) unique labels, (3) label set closed
    under intersection and containing the input ranges, (4) edges are
    immediate strict containments.
    """

    def __init__(self, root: DdnfNode[ElementT], nodes: Dict[ElementT, DdnfNode[ElementT]]):
        self.root = root
        self.nodes = nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, label: ElementT) -> DdnfNode[ElementT]:
        """The node labeled ``label``."""
        return self.nodes[label]

    def topological(self) -> List[DdnfNode[ElementT]]:
        """Nodes in a parent-before-child order."""
        order: List[DdnfNode[ElementT]] = []
        visited: Set[int] = set()

        def visit(node: DdnfNode[ElementT]) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            order.append(node)
            for child in node.children:
                visit(child)

        visit(self.root)
        return order


def close_under_intersection(
    ranges: Sequence[ElementT], algebra: RangeAlgebra[ElementT]
) -> List[ElementT]:
    """The input ranges plus the universe, closed under intersection.

    For prefix-structured elements the intersection of two elements is
    one of them or empty unless one contains the other, so closure
    converges after a single pairwise pass; we iterate to a fixpoint
    anyway to stay correct for any conforming algebra.
    """
    closed: Set[ElementT] = set(ranges)
    closed.add(algebra.universe)
    worklist: List[ElementT] = list(closed)
    while worklist:
        current = worklist.pop()
        for other in list(closed):
            meet = algebra.intersect(current, other)
            if meet is not None and meet not in closed:
                closed.add(meet)
                worklist.append(meet)
    return sorted(closed)  # deterministic construction order


def build_dag(
    ranges: Sequence[ElementT], algebra: RangeAlgebra[ElementT]
) -> DdnfDag[ElementT]:
    """Build the immediate-containment DAG over the closed range set."""
    return _dag_from_labels(
        close_under_intersection(ranges, algebra), algebra
    )


def _dag_from_labels(
    labels: Sequence[ElementT], algebra: RangeAlgebra[ElementT]
) -> DdnfDag[ElementT]:
    nodes: Dict[ElementT, DdnfNode[ElementT]] = {
        label: DdnfNode(label) for label in labels
    }

    # strict_supersets[x] = labels strictly containing x.
    strict_supersets: Dict[ElementT, List[ElementT]] = {label: [] for label in labels}
    for outer in labels:
        for inner in labels:
            if outer != inner and algebra.contains(outer, inner):
                strict_supersets[inner].append(outer)

    # Edge (m, n) iff m strictly contains n with no label strictly between.
    for inner in labels:
        supersets = strict_supersets[inner]
        for parent in supersets:
            immediate = True
            for middle in supersets:
                if middle == parent:
                    continue
                if algebra.contains(parent, middle):
                    # parent > middle > inner, so parent is not immediate.
                    immediate = False
                    break
            if immediate:
                nodes[parent].children.append(nodes[inner])

    root = nodes[algebra.universe]
    for node in nodes.values():
        node.children.sort(key=lambda child: repr(child.label))
    return DdnfDag(root, nodes)


#: LRU capacity of the shared DAG cache.  Distinct vocabularies per
#: fleet are bounded by the number of distinct policy contents, which
#: symmetry compression already keeps small; 256 comfortably covers a
#: large mixed fleet while bounding memory.
_DAG_CACHE_CAPACITY = 256

_cache_lock = threading.Lock()
#: (universe, frozenset(input ranges)) -> canonical closed vocabulary.
_vocab_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
#: (universe, closed vocabulary tuple) -> built DAG (treated read-only).
_dag_cache: "OrderedDict[Tuple, DdnfDag]" = OrderedDict()


def dag_cache_clear() -> None:
    """Drop every cached vocabulary and DAG (tests and benchmarks)."""
    with _cache_lock:
        _vocab_cache.clear()
        _dag_cache.clear()


def _lru_get(cache: OrderedDict, key):
    with _cache_lock:
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value


def _lru_put(cache: OrderedDict, key, value):
    """Insert first-wins (a racing builder adopts the existing value)."""
    with _cache_lock:
        existing = cache.get(key)
        if existing is not None:
            cache.move_to_end(key)
            return existing
        cache[key] = value
        while len(cache) > _DAG_CACHE_CAPACITY:
            cache.popitem(last=False)
        return value


def cached_dag(
    ranges: Sequence[ElementT], algebra: RangeAlgebra[ElementT]
) -> DdnfDag[ElementT]:
    """:func:`build_dag` through a process-wide two-level LRU cache.

    Level 1 maps the *input* range multiset to its canonical closed
    vocabulary; level 2 maps the closed vocabulary to the built DAG.
    Two components quoting different range subsets of the same closure
    (common across a templated fleet, where every clone carries the
    same prefix lists) therefore share one DAG — HeaderLocalize builds
    each distinct ddNF DAG once per process instead of once per
    pair-per-difference.  Keys lead with ``algebra.universe`` because
    the universe value distinguishes the two range algebras in use
    (``PrefixRange.universe()`` vs ``Prefix(0, 0)``); the returned DAG
    is shared and must be treated as read-only.
    """
    vocab_key = (algebra.universe, frozenset(ranges))
    closed = _lru_get(_vocab_cache, vocab_key)
    if closed is None:
        closed = _lru_put(
            _vocab_cache,
            vocab_key,
            tuple(close_under_intersection(ranges, algebra)),
        )
    dag_key = (algebra.universe, closed)
    dag = _lru_get(_dag_cache, dag_key)
    if dag is None:
        perf.add("header_localize.dag_cache_misses")
        dag = _lru_put(_dag_cache, dag_key, _dag_from_labels(closed, algebra))
    else:
        perf.add("header_localize.dag_cache_hits")
    return dag
