"""Near-symmetry fleet compression — equal modulo a parameter substitution.

Exact symmetry compression (PR 8, ``repro.core.fleet``) collapses
devices whose semantic content is byte-identical.  Real templated
fleets are never that clean: every leaf differs in its loopback,
interface addresses, router-id, and BGP neighbor statements, so
``partition_by_device_fingerprint`` degenerates to N singleton classes
and the matrix is back to O(N^2) full diffs.  This module compresses
that case, following the Control Plane Compression insight (Beckett et
al., SIGCOMM 2018): devices equal *modulo a parameter substitution*
can share one analysis under explicit soundness conditions.

The machinery rests on template fingerprints
(:func:`repro.model.fingerprint.compute_template`): a device is
``(template_fingerprint, substitution)`` where the substitution fills
an allowlisted set of rewritable literals (interface subnets,
router-ids, BGP peer/update-source addresses — never ACL/route-map
match semantics).  The soundness theorem this module encodes:

    For devices ``A, B`` and ``A', B'`` with ``template(A) ==
    template(A')`` and ``template(B) == template(B')``, the
    difference *count* ``config_diff_summary(A', B') ==
    config_diff_summary(A, B)`` holds whenever both pairs induce the
    same joint first-occurrence equality pattern over their hole
    *atoms* — the ``(tag, literal)`` values the diff actually consults
    (interface subnets via connected-route symmetric difference, BGP
    peers via peer-keyed neighbor pairing).  Free holes (router-ids,
    update-sources) never reach a comparison and carry no atoms.

:func:`pair_signature` canonicalizes ``(template_fp_1, template_fp_2,
pattern)`` for an unordered pair — difference counts are symmetric, so
orientation is normalized away.  :func:`plan_near_pairs` then analyzes
one representative pair per signature and replays its count across the
class.  Every class is statically checked by
:func:`verify_template_class` first; a failing class dissolves into
singletons (concrete analysis) with a ``near_symmetry.fallbacks`` perf
count and a ``FleetReport.notes`` entry — mirroring the atom-budget
fallback convention.  A representative pair that *fails* at runtime is
never replayed: its near-symmetric member pairs fall back to concrete
analysis (``SymmetryPlan.expand_near`` returns them for a second
fan-out) so one targeted fault cannot poison an entire class.

:func:`raw_substitution` / :func:`replay_report_dict` are the
full-report form of the replay identity: the oracle and the test suite
use them to prove that a replayed pair's diff entries, spans, and
localized headers are exactly the representative pair's rewritten
through the substitution.  ``compare_fleet`` itself never serves
rewritten reports — the matrix is count-based and reference reports
are always produced live — so serialized fleet reports stay
byte-identical to uncompressed runs (the PR 8 contract).
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..model.device import DeviceConfig
from ..model.fingerprint import (
    _HOLE_FIELDS,
    DeviceTemplate,
    partition_by_device_fingerprint,
)
from .parallel import SymmetryPlan, plan_representative_pairs

__all__ = [
    "pair_pattern",
    "pair_signature",
    "verify_template_class",
    "plan_near_pairs",
    "raw_substitution",
    "replay_report_dict",
]

#: Perf counter bumped once per fallback event (dissolved template
#: class, or member pair re-analyzed after its representative failed).
FALLBACK_COUNTER = "near_symmetry.fallbacks"

_ALLOWED_KINDS = frozenset(_HOLE_FIELDS.values())


def pair_pattern(
    atoms1: Sequence[Tuple[str, str]], atoms2: Sequence[Tuple[str, str]]
) -> Tuple[int, ...]:
    """First-occurrence renaming of the pair's joint atom sequence.

    Two pairs with the same pattern agree on every within-tag equality
    the diff can ask about their holes — which atoms coincide within
    and across the two devices — while the concrete literals are
    abstracted away.  (Atoms keep their tag, so a subnet and a peer
    address that happen to share text never alias.)
    """
    ids: Dict[Tuple[str, str], int] = {}
    return tuple(
        ids.setdefault(atom, len(ids))
        for atom in (*atoms1, *atoms2)
    )


def pair_signature(
    template_id1: str,
    template1: DeviceTemplate,
    template_id2: str,
    template2: DeviceTemplate,
) -> Tuple[str, str, Tuple[int, ...]]:
    """The replay-equivalence key of an unordered device pair.

    Pairs with equal signatures have equal difference counts (the
    soundness theorem in the module docstring).  Counts are symmetric,
    so the signature is orientation-canonical: distinct template ids
    order by id; equal ids take the lexicographically-smaller pattern
    of the two orientations.
    """
    if template_id1 > template_id2:
        template_id1, template1, template_id2, template2 = (
            template_id2,
            template2,
            template_id1,
            template1,
        )
    if template_id1 == template_id2:
        pattern = min(
            pair_pattern(template1.atom_sequence, template2.atom_sequence),
            pair_pattern(template2.atom_sequence, template1.atom_sequence),
        )
    else:
        pattern = pair_pattern(
            template1.atom_sequence, template2.atom_sequence
        )
    return (template_id1, template_id2, pattern)


def verify_template_class(devices: Sequence[DeviceConfig]) -> Optional[str]:
    """Statically check the replay soundness precondition for one class.

    Every member must agree with the class representative on hole
    count, hole kind sequence, and per-hole atom shape, and every hole
    kind must come from the rewritable-literal allowlist.  All of this
    is true by construction when template fingerprints are equal — the
    check guards the construction itself (a model/allowlist change that
    leaks holes into compared positions must dissolve the class, not
    silently replay wrong counts).  Returns a one-line failure detail,
    or ``None`` when the class is sound.
    """
    if not devices:
        return None
    representative = devices[0]
    base = representative.template
    for kind in base.kind_sequence:
        if kind not in _ALLOWED_KINDS:
            return (
                f"{representative.hostname}: hole kind {kind!r} is not in"
                " the rewritable-literal allowlist"
            )
    for device in devices[1:]:
        candidate = device.template
        if candidate.fingerprint != base.fingerprint:
            return (
                f"{device.hostname}: template fingerprint diverges from"
                f" {representative.hostname}"
            )
        if len(candidate.holes) != len(base.holes):
            return (
                f"{device.hostname}: {len(candidate.holes)} hole(s) vs"
                f" {len(base.holes)} on {representative.hostname}"
            )
        if candidate.kind_sequence != base.kind_sequence:
            return (
                f"{device.hostname}: hole kind sequence diverges from"
                f" {representative.hostname}"
            )
        for index, (hole, other) in enumerate(
            zip(base.holes, candidate.holes)
        ):
            if len(hole.atoms) != len(other.atoms) or tuple(
                tag for tag, _ in hole.atoms
            ) != tuple(tag for tag, _ in other.atoms):
                return (
                    f"{device.hostname}: hole {index} atom shape diverges"
                    f" from {representative.hostname}"
                )
    return None


def plan_near_pairs(
    devices: Sequence[DeviceConfig],
) -> Tuple[SymmetryPlan, List[str]]:
    """Build the near-symmetry :class:`SymmetryPlan` for a fleet.

    Exact-fingerprint classes come first (their intra-class pairs are
    zero and their members inherit outcomes verbatim, as in PR 8); the
    exact-class representatives are then partitioned by template
    fingerprint, each template class is verified, and one
    representative pair per :func:`pair_signature` is selected for
    analysis.  Returns the plan plus any fallback notes (dissolved
    classes); on an all-identical or hole-free fleet this degenerates
    to exactly the exact-symmetry plan with identity substitutions.
    """
    by_host = {device.hostname: device for device in devices}
    base = plan_representative_pairs(partition_by_device_fingerprint(devices))
    reps = sorted(base.members)
    notes: List[str] = []

    grouped: Dict[str, List[str]] = {}
    for rep in reps:
        grouped.setdefault(by_host[rep].template.fingerprint, []).append(rep)

    # template id per exact-class representative; dissolved members get
    # synthetic singleton ids so every pair touching them analyzes
    # concretely (unique id => unique signature).
    template_id: Dict[str, str] = {}
    template_classes: Dict[str, Tuple[str, ...]] = {}
    dissolved = 0
    for fingerprint in sorted(grouped):
        members = sorted(grouped[fingerprint])
        detail = (
            verify_template_class([by_host[member] for member in members])
            if len(members) > 1
            else None
        )
        if detail is None:
            template_classes[fingerprint] = tuple(members)
            for member in members:
                template_id[member] = fingerprint
        else:
            dissolved += 1
            notes.append(
                "near-symmetry: template class verification failed"
                f" ({detail}); analyzing its {len(members)} device(s)"
                " concretely"
            )
            for member in members:
                singleton = f"dissolved:{fingerprint}:{member}"
                template_classes[singleton] = (member,)
                template_id[member] = singleton
    if dissolved:
        perf.add(FALLBACK_COUNTER, dissolved)

    analyzed: Dict[Tuple[str, str, Tuple[int, ...]], Tuple[str, str]] = {}
    replay_key: Dict[Tuple[str, str], Tuple[str, str]] = {}
    for index, first in enumerate(reps):
        for second in reps[index + 1 :]:
            signature = pair_signature(
                template_id[first],
                by_host[first].template,
                template_id[second],
                by_host[second].template,
            )
            # Pairs iterate in sorted order, so the first pair seen for
            # a signature is the deterministic analysis representative.
            target = analyzed.setdefault(signature, (first, second))
            if target != (first, second):
                replay_key[(first, second)] = target
    plan = SymmetryPlan(
        representative=base.representative,
        members=base.members,
        pair_keys=tuple(sorted(analyzed.values())),
        mode="near",
        replay_key=replay_key,
        template_classes=template_classes,
    )
    return plan, notes


_IP_TOKEN = re.compile(r"(?<![\d.])(?:\d{1,3}\.){3}\d{1,3}(?![\d.])")
_HOST_PLACEHOLDER = "\x00host\x00"
_IP_PLACEHOLDER = "\x00ip\x00"


def raw_substitution(
    device1: DeviceConfig, device2: DeviceConfig
) -> Optional[Dict[str, str]]:
    """The literal-rewrite map carrying ``device1``'s text to ``device2``'s.

    Both raw configurations are tokenized into IPv4 literals (hostnames
    placeholder-replaced first); if the surrounding skeletons are
    byte-identical, zipping the literal streams yields the raw-text
    substitution — covering source spans, which quote raw lines.  The
    devices' template-hole substitutions are merged in on top: model
    literals are *normalized* (an interface address loses its host bits
    when masked to its subnet), so structural components mention forms
    that never appear in the raw text.  Hostname and filename entries
    complete the map.  Returns ``None`` when the skeletons diverge, the
    templates diverge, or one literal would need two images — the pair
    is not a pure substitution instance and must not be replayed at the
    report level.
    """
    text1 = "\n".join(device1.raw_lines).replace(
        device1.hostname, _HOST_PLACEHOLDER
    )
    text2 = "\n".join(device2.raw_lines).replace(
        device2.hostname, _HOST_PLACEHOLDER
    )
    if _IP_TOKEN.sub(_IP_PLACEHOLDER, text1) != _IP_TOKEN.sub(
        _IP_PLACEHOLDER, text2
    ):
        return None
    mapping: Dict[str, str] = {}
    for source, target in zip(
        _IP_TOKEN.findall(text1), _IP_TOKEN.findall(text2)
    ):
        if mapping.setdefault(source, target) != target:
            return None
    template1 = device1.template
    template2 = device2.template
    if template1.fingerprint != template2.fingerprint:
        return None
    for hole1, hole2 in zip(template1.holes, template2.holes):
        pairs = [(hole1.value, hole2.value)]
        pairs.extend(
            (value1, value2)
            for (_, value1), (_, value2) in zip(hole1.atoms, hole2.atoms)
        )
        for source, target in pairs:
            if mapping.setdefault(source, target) != target:
                return None
            if "/" in source and "/" in target:
                # Prefix-valued literals also surface as bare addresses
                # in rendered components; map that form too.
                bare1 = source.partition("/")[0]
                bare2 = target.partition("/")[0]
                if mapping.setdefault(bare1, bare2) != bare2:
                    return None
    mapping[device1.hostname] = device2.hostname
    mapping[device1.filename] = device2.filename
    return mapping


def replay_report_dict(report: Dict, mapping: Dict[str, str]) -> Dict:
    """Rewrite every literal of a serialized report through ``mapping``.

    Applies one longest-first alternation pass over the JSON encoding —
    word-ish boundary guards keep ``10.0.0.1`` from matching inside
    ``10.0.0.10`` and a hostname from matching inside its filename —
    so diff entries, source spans, and localized headers are rewritten
    coherently in one step.  Swapping maps (``a -> b, b -> a``) are
    safe: each occurrence is consumed exactly once.
    """
    identity = {key for key, value in mapping.items() if key == value}
    keys = sorted(
        (key for key in mapping if key not in identity),
        key=len,
        reverse=True,
    )
    if not keys:
        return json.loads(json.dumps(report))
    pattern = re.compile(
        "|".join(
            f"(?<![\\w.]){re.escape(key)}(?![\\w.])" for key in keys
        )
    )
    text = pattern.sub(
        lambda match: mapping[match.group(0)], json.dumps(report)
    )
    return json.loads(text)
