"""Cross-pair diff memoization keyed by component fingerprints.

Fleet comparison is O(n²) pairs, but templated fleets are built from a
handful of *distinct* components: most ACL/route-map/structural diffs
across the matrix compare content that has already been compared.  The
:class:`DiffMemo` table makes each unique ``(fingerprint_a,
fingerprint_b)`` component diff run exactly once; every later pair
sharing those fingerprints replays the memoized result.

Soundness (the DESIGN.md argument in one paragraph): fingerprints hash
the full span-free canonical form of a component
(:mod:`repro.model.fingerprint`), so equal fingerprints mean
SemanticDiff/StructuralDiff receive identical content and — both being
deterministic — would produce the same differences.  Replay therefore
preserves Theorem 3.3's modular verdict.  Two deliberate restrictions
keep *reports* (not just verdicts) exact:

* only **clean** results are memoized — a component aborted by a node
  or time budget is never stored, so budgets need not be part of the
  key and a memo hit always represents a completed analysis;
* an entry with ``count > 0`` is replayed as a *count* (fleet matrix)
  or recomputed live (full reports), because text localization must
  point at the actual devices' lines; an entry with ``count == 0``
  lets both modes skip the component entirely, which contributes
  nothing to a report either way.

Entries are JSON-compatible dictionaries (serialized via
:mod:`repro.core.serialize`), so the memo can be backed by the on-disk
:class:`repro.cache.ArtifactCache` and shipped across process
boundaries: workers accumulate their new entries and return them inside
``PairOutcome.memo_updates`` for the parent to merge.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .. import perf
from ..model.fingerprint import ComponentFingerprints
from .results import ComponentKind, SemanticDifference, StructuralDifference
from .serialize import (
    SCHEMA_VERSION,
    semantic_difference_to_dict,
    structural_difference_to_dict,
)

__all__ = [
    "DiffMemo",
    "MemoKey",
    "acl_key",
    "count_entry",
    "route_map_key",
    "structural_key",
    "semantic_entry",
    "structural_entry",
]

#: Memo keys are flat tuples of primitives: hashable for the in-memory
#: table and ``repr()``-stable for content-addressing the disk cache.
MemoKey = Tuple


def route_map_key(fp1: str, fp2: str, exhaustive_communities: bool) -> MemoKey:
    """Key for one route-map pair diff (exhaustive-communities mode
    changes the localization attached to entries, so it is in the key)."""
    return ("route_map", fp1, fp2, bool(exhaustive_communities))


def acl_key(fp1: str, fp2: str) -> MemoKey:
    """Key for one ACL pair diff."""
    return ("acl", fp1, fp2)


def structural_key(
    fps1: ComponentFingerprints,
    fps2: ComponentFingerprints,
    ospf_interface_pairing: Dict[str, str],
) -> MemoKey:
    """Key for the whole StructuralDiff of a pair.

    The OSPF interface pairing is an explicit input of
    ``structural_diff_all`` (it is derived from both devices'
    interfaces, which the structural fingerprints already cover, but
    callers may override pairings — keying on it keeps that case
    correct for free).
    """
    return (
        "structural",
        fps1.structural,
        fps2.structural,
        tuple(sorted(ospf_interface_pairing.items())),
    )


def semantic_entry(
    kind: ComponentKind,
    differences: Iterable[SemanticDifference],
    context: str = "",
    provenance: Optional[str] = None,
    replay: Optional[Dict] = None,
) -> Dict:
    """A clean semantic component result as a memo/cache entry.

    When ``provenance`` is supplied the differences were produced in
    collect mode — they carry localization — and the entry is marked
    ``localized`` so collect-mode hits can *replay* it instead of
    recomputing (:mod:`repro.core.replay`): ``provenance`` is the
    span/label digest gating the replay, ``replay`` the augmentation
    block carrying flags serialization omits.  Entries without the mark
    (count-mode results, pre-v5 cache entries) still replay as counts
    only.
    """
    serialized = [semantic_difference_to_dict(d) for d in differences]
    entry = {
        "schema_version": SCHEMA_VERSION,
        "kind": kind.value,
        "context": context,
        "count": len(serialized),
        "semantic": serialized,
        "structural": [],
    }
    if provenance is not None:
        entry["localized"] = True
        entry["provenance"] = provenance
        entry["replay"] = replay if replay is not None else {}
    return entry


def count_entry(kind: ComponentKind, count: int, context: str = "") -> Dict:
    """A count-only entry, as seeded by fleet-scale atomization.

    Carries the exact difference count but no serialized differences:
    the memo protocol only ever *replays* counts (count mode sums
    ``count``; collect mode recomputes live so localization points at
    the actual devices, and a zero count skips the component in both
    modes), so the empty ``semantic`` list is never read.  ``seeded``
    marks the entry so diagnostics and tests can tell it from a
    completed per-pair analysis; seeds stay in memory only
    (:meth:`DiffMemo.put_seed`).
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind.value,
        "context": context,
        "count": int(count),
        "semantic": [],
        "structural": [],
        "seeded": True,
    }


def structural_entry(differences: Iterable[StructuralDifference]) -> Dict:
    """A clean StructuralDiff result as a memo/cache entry."""
    serialized = [structural_difference_to_dict(d) for d in differences]
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "structural",
        "context": "",
        "count": len(serialized),
        "semantic": [],
        "structural": serialized,
    }


class DiffMemo:
    """In-memory memo table with optional persistent-cache backing.

    Reads fall through to the :class:`~repro.cache.ArtifactCache` when
    one is attached (read-through), and every new entry is written
    through immediately, so a warm cache survives the process.  The
    cache handle never crosses process boundaries (``__getstate__``
    drops it): workers read the entries snapshot they inherited and
    report new entries back via :meth:`take_updates`, which the parent
    folds in — and persists — with :meth:`merge`.
    """

    def __init__(self, cache: Optional[object] = None) -> None:
        self._entries: Dict[MemoKey, Dict] = {}
        self._updates: Dict[MemoKey, Dict] = {}
        self._cache = cache
        # Per-universe bitset vectors from fleet-scale atomization,
        # keyed by universe id (see FleetAtomizer.universe_id).  Memory
        # only: never persisted and never pickled to workers — only the
        # seeded count entries (plain dicts) cross process boundaries.
        self._vectors: Dict[str, Dict] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: MemoKey) -> bool:
        return key in self._entries

    def get(self, key: MemoKey) -> Optional[Dict]:
        """The entry for ``key``, consulting the backing cache on miss."""
        entry = self._entries.get(key)
        if entry is None and self._cache is not None:
            entry = self._cache.get_diff(key)
            if entry is not None:
                self._entries[key] = entry
        if entry is None:
            perf.add("memo.misses")
            return None
        perf.add("memo.hits")
        return entry

    def put(self, key: MemoKey, entry: Dict) -> None:
        """Record a clean result (first write wins; results for equal
        fingerprints are identical, so later writes are redundant)."""
        if key in self._entries:
            return
        self._entries[key] = entry
        self._updates[key] = entry
        perf.add("memo.stores")
        if self._cache is not None:
            self._cache.put_diff(key, entry)

    def upgrade(self, key: MemoKey, entry: Dict) -> None:
        """Replace a count-only entry with a localized one.

        ``put`` is first-write-wins because equal fingerprints imply
        equal results — but a count-mode run stores entries *without*
        localization, and under that rule they would permanently block
        collect-mode replay.  Upgrading is monotone (strictly more
        information, same count and differences), so replacing is as
        sound as the original write; an already-localized entry is left
        alone.
        """
        existing = self._entries.get(key)
        if existing is not None and existing.get("localized"):
            return
        self._entries[key] = entry
        self._updates[key] = entry
        perf.add("memo.upgrades")
        if self._cache is not None:
            self._cache.put_diff(key, entry)

    def put_seed(self, key: MemoKey, entry: Dict) -> None:
        """Record a seeded (count-only) entry, in memory only.

        Seeds are exact counts derived from fleet-scale atomization,
        not completed per-pair analyses, so they are deliberately kept
        out of ``_updates`` and the persistent cache: a warm disk cache
        must only ever contain full entries.  First write wins, and a
        seed never overwrites an existing full entry.
        """
        if key in self._entries:
            return
        self._entries[key] = entry
        perf.add("memo.seeds")

    def get_vectors(self, universe_id: str) -> Optional[Dict]:
        """Memoized per-fingerprint bitset vectors for one universe."""
        vectors = self._vectors.get(universe_id)
        perf.add("memo.vector_hits" if vectors is not None else "memo.vector_misses")
        return vectors

    def put_vectors(self, universe_id: str, vectors: Dict) -> None:
        """Memoize one universe's per-fingerprint bitset vectors."""
        self._vectors[universe_id] = vectors

    def take_updates(self) -> Dict[MemoKey, Dict]:
        """Drain entries added since the last drain (worker → parent)."""
        updates, self._updates = self._updates, {}
        return updates

    def merge(self, updates: Dict[MemoKey, Dict]) -> None:
        """Fold another process's new entries in (and persist them).

        First write wins, with one exception mirroring :meth:`upgrade`:
        a localized entry from a worker replaces a count-only entry the
        parent already holds, so the extra information survives the
        round trip.
        """
        for key, entry in updates.items():
            existing = self._entries.get(key)
            if existing is not None and (
                existing.get("localized") or not entry.get("localized")
            ):
                continue
            self._entries[key] = entry
            perf.add("memo.merged")
            if self._cache is not None:
                self._cache.put_diff(key, entry)

    # -- pickling: entries travel, the cache handle stays home ---------------
    def __getstate__(self) -> Dict:
        return {"entries": dict(self._entries)}

    def __setstate__(self, state: Dict) -> None:
        self._entries = dict(state["entries"])
        self._updates = {}
        self._cache = None
        self._vectors = {}
