"""Fleet comparison — n-way equivalence with outlier detection.

§5.1 Scenario 3 wants *all* gateway routers to enforce identical
policy; Campion's unit of work is a pair.  This module lifts ConfigDiff
to a fleet: it computes the pairwise difference matrix, elects the
*medoid* configuration (the device minimizing total differences to the
rest — the fleet's de-facto intent, in the spirit of the outlier-
detection related work the paper cites) and reports every other device
against it, so each outlier comes with Campion's full localization.

Failures are isolated, not fatal: the matrix phase consumes
:class:`~repro.core.parallel.PairOutcome` objects, so a pair that
crashes or exceeds its wall-clock timeout is recorded in
``failed_pairs`` while every surviving pair still lands in the matrix.
The medoid is then elected over *surviving* pairs (mean differences per
surviving pair, so devices with failed pairs are not advantaged by
their missing entries), and devices whose reference report cannot be
produced are listed in ``failed`` alongside ``outliers``/``conforming``.

**Symmetry compression** (``compress`` / ``CAMPION_FLEET_COMPRESS``,
three modes, default ``near``): real fleets are heavily templated, so
before the matrix the devices are partitioned into equivalence
classes.  ``exact`` partitions by *device fingerprint* (the aggregate
of every component fingerprint — equality means ConfigDiff would find
zero differences; see :mod:`repro.model.fingerprint`): only unordered
pairs of class representatives are analyzed; intra-class pairs expand
to count 0 and cross-class pairs copy their representative pair's
count — the same soundness argument that lets the diff memo replay a
fingerprint-keyed entry into any pair with those fingerprints.
``near`` additionally partitions the exact representatives by
*template fingerprint* (equal configurations modulo an allowlisted
parameter substitution — per-device loopbacks, router-ids, BGP peers)
and analyzes one pair per replay signature, replaying its count across
the template class; see :mod:`repro.core.near_symmetry` for the
soundness conditions and the fallback-to-concrete rules.  In every
mode the reference reports still run per device (through the
representative-warmed memo, so clones replay at memo speed): spans,
hostnames, and parse diagnostics are device-specific and deliberately
excluded from fingerprints, and running them live is what keeps the
report — and its serialized form — byte-identical to the uncompressed
run.  The oracle's ``symmetry`` and ``near-symmetry`` selfcheck
generators cross-validate exactly that identity.

For a fleet of n devices the uncompressed matrix costs n(n-1)/2
comparisons (k(k-1)/2 for k fingerprint classes under ``exact``, down
to s analyzed pairs for s distinct replay signatures under ``near``);
pass ``reference=<hostname>`` to skip the election and compare
everything against a known-good device in n-1 comparisons.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..model.device import DeviceConfig
from ..model.fingerprint import partition_by_device_fingerprint
from .config_diff import config_diff
from .coverage import DeviceCoverage, compute_fleet_coverage
from .fleet_atoms import FleetAtomizer
from .memo import DiffMemo
from .near_symmetry import FALLBACK_COUNTER, plan_near_pairs
from .parallel import (
    pairwise_count_outcomes,
    plan_representative_pairs,
    resolve_timeout,
    resolve_workers,
)
from .results import CampionReport
from .setalg import default_backend_name

__all__ = [
    "COMPRESS_ENV",
    "COMPRESS_MODES",
    "FleetReport",
    "SymmetryStats",
    "compare_fleet",
    "resolve_compress",
]

COMPRESS_ENV = "CAMPION_FLEET_COMPRESS"

#: The three matrix-compression modes, in increasing aggressiveness.
COMPRESS_MODES = ("off", "exact", "near")


def resolve_compress(compress: Optional[object] = None) -> str:
    """Resolve the symmetry-compression mode: ``off``/``exact``/``near``.

    Argument wins, else ``CAMPION_FLEET_COMPRESS``, else ``near`` —
    compression never changes the report, only how much of the matrix
    is computed versus expanded/replayed.  Booleans keep their PR 8
    meaning (``True`` = ``exact``, ``False`` = ``off``); in the
    environment, ``0``/``false``/``no``/``off`` disable, ``exact``
    selects exact-only, and anything else (including the historical
    ``1``/``true``/``yes``/``on``) selects ``near``.
    """
    if compress is not None:
        if compress is True:
            return "exact"
        if compress is False:
            return "off"
        mode = str(compress).strip().lower()
        if mode not in COMPRESS_MODES:
            raise ValueError(
                f"compress must be one of {', '.join(COMPRESS_MODES)};"
                f" got {compress!r}"
            )
        return mode
    raw = os.environ.get(COMPRESS_ENV, "").strip().lower()
    if not raw:
        return "near"
    if raw in ("0", "false", "no", "off"):
        return "off"
    if raw == "exact":
        return "exact"
    return "near"


def _elect_medoid(
    candidates: Sequence[str], survivors: Dict[str, List[int]]
) -> str:
    """The device with the smallest mean difference count to its peers.

    Deterministic under ties by construction: candidates are ranked by
    ``(exact mean, hostname)``.  Means are compared as
    :class:`~fractions.Fraction` — float division could round two
    genuinely-equal means (different survivor counts) to unequal
    floats, or vice versa, making the winner depend on accumulated
    rounding rather than the hostname tie-break.  Input ordering (and
    therefore parallel completion order, since callers build
    ``survivors`` from the outcome list) never affects the result:
    the hostname component of the key already totally orders the
    candidates, so no pre-sorting is needed.
    """
    return min(
        candidates,
        key=lambda hostname: (
            Fraction(sum(survivors[hostname]), len(survivors[hostname])),
            hostname,
        ),
    )


@dataclass(frozen=True)
class SymmetryStats:
    """How much of the matrix phase symmetry compression avoided.

    Informational only — deliberately *not* serialized (like timings),
    so compressed and uncompressed runs stay byte-identical in JSON.
    """

    devices: int
    classes: int
    #: all unordered pairs the uncompressed matrix would compare
    total_pairs: int
    #: pairs actually analyzed (representatives, plus — in near mode —
    #: any pairs that fell back to concrete analysis)
    analyzed_pairs: int
    #: which compression partitioned the matrix: "exact" or "near"
    mode: str = "exact"
    #: near mode only: pairs analyzed concretely because their
    #: representative pair failed or their class failed verification
    fallback_pairs: int = 0

    @property
    def expanded_pairs(self) -> int:
        """Pairs whose counts were expanded instead of computed."""
        return self.total_pairs - self.analyzed_pairs

    def render(self) -> str:
        """One summary line for CLI/stderr output."""
        if self.mode == "near":
            line = (
                f"near-symmetry: {self.devices} device(s) in "
                f"{self.classes} template class(es); analyzed "
                f"{self.analyzed_pairs} of {self.total_pairs} matrix "
                f"pair(s)"
            )
            if self.fallback_pairs:
                line += f"; {self.fallback_pairs} fallback pair(s)"
            return line
        return (
            f"symmetry: {self.devices} device(s) in {self.classes} "
            f"fingerprint class(es); analyzed {self.analyzed_pairs} of "
            f"{self.total_pairs} matrix pair(s)"
        )


@dataclass
class FleetReport:
    """Result of an n-way comparison."""

    reference: str
    hostnames: List[str]
    # difference counts for every unordered pair (by hostname) that
    # completed; failed pairs appear in failed_pairs instead
    matrix: Dict[Tuple[str, str], int] = field(default_factory=dict)
    # full reports of each non-reference device against the reference
    reports: Dict[str, CampionReport] = field(default_factory=dict)
    # pairs whose comparison crashed or timed out, with the cause
    failed_pairs: Dict[Tuple[str, str], str] = field(default_factory=dict)
    # devices whose reference report could not be produced, with the cause
    failed_reports: Dict[str, str] = field(default_factory=dict)
    # diagnostics (e.g. fleet-atoms per-group budget fallbacks); kept
    # sorted and deduplicated so the serialized form (schema v4 carries
    # notes) stays byte-identical across backends and worker counts
    notes: List[str] = field(default_factory=list)
    # per-device configuration coverage (schema v4): which policy lines
    # participated in some localized diff vs. untouched policy
    coverage: Dict[str, DeviceCoverage] = field(default_factory=dict)
    # symmetry-compression statistics for the matrix phase, or None
    # when no compressed matrix phase ran; excluded from serialization
    # (like timings) so compressed == uncompressed output holds
    symmetry: Optional[SymmetryStats] = None

    @property
    def outliers(self) -> List[str]:
        """Devices that differ from the reference."""
        return sorted(
            hostname
            for hostname, report in self.reports.items()
            if not report.is_equivalent()
        )

    @property
    def conforming(self) -> List[str]:
        """Devices equivalent to the reference."""
        return sorted(
            hostname
            for hostname, report in self.reports.items()
            if report.is_equivalent()
        )

    @property
    def failed(self) -> List[str]:
        """Devices with no usable reference report."""
        return sorted(self.failed_reports)

    def is_partial(self) -> bool:
        """Whether any part of the fleet analysis is missing or degraded."""
        return bool(
            self.failed_pairs
            or self.failed_reports
            or any(report.is_degraded() for report in self.reports.values())
        )

    def pair_count(self, first: str, second: str) -> int:
        """Difference count between two devices (order-insensitive).

        Raises :class:`KeyError` with a message naming the pair when it
        has no count — because a hostname is unknown, because the
        pair's comparison failed (the recorded cause is included), or
        because the two names are the same device.
        """
        key = (min(first, second), max(first, second))
        if key in self.matrix:
            return self.matrix[key]
        unknown = sorted({first, second} - set(self.hostnames))
        if unknown:
            raise KeyError(
                f"no such device(s) in the fleet: {', '.join(unknown)}"
                f" (fleet: {', '.join(self.hostnames)})"
            )
        if key in self.failed_pairs:
            raise KeyError(
                f"pair {key[0]} vs {key[1]} has no difference count: "
                f"comparison failed ({self.failed_pairs[key]})"
            )
        if first == second:
            raise KeyError(
                f"pair {first} vs {second} is one device, not a pair"
            )
        raise KeyError(f"pair {key[0]} vs {key[1]} was not compared")

    def render_summary(self) -> str:
        """One-paragraph fleet verdict for CLI output."""
        conforming = self.conforming
        outliers = self.outliers
        failed = self.failed
        lines = [
            f"fleet of {len(self.hostnames)}; reference: {self.reference}",
            f"conforming: {len(conforming)}; outliers: {len(outliers)}"
            + (f"; failed: {len(failed)}" if failed else ""),
        ]
        for hostname in outliers:
            report = self.reports[hostname]
            lines.append(
                f"  {hostname}: {report.total_differences()} difference(s) vs {self.reference}"
            )
        for hostname in failed:
            lines.append(
                f"  {hostname}: comparison failed ({self.failed_reports[hostname]})"
            )
        if self.failed_pairs:
            lines.append(f"failed pairs: {len(self.failed_pairs)}")
            for (first, second), cause in sorted(self.failed_pairs.items()):
                lines.append(f"  {first} vs {second}: {cause}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_coverage(self) -> str:
        """Per-device configuration-coverage section for CLI output."""
        lines = ["configuration coverage (policy lines in localized diffs):"]
        for hostname in sorted(self.coverage):
            lines.append(f"  {self.coverage[hostname].render()}")
        return "\n".join(lines)


def compare_fleet(
    devices: Sequence[DeviceConfig],
    reference: Optional[str] = None,
    exhaustive_communities: bool = False,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    node_limit: Optional[int] = None,
    memo: Optional[DiffMemo] = None,
    use_memo: bool = True,
    set_backend: Optional[str] = None,
    compress: Optional[object] = None,
) -> FleetReport:
    """Compare a fleet of configurations intended to be identical.

    With ``reference=None`` the medoid is elected from the pairwise
    difference matrix: the device with the smallest *mean* difference
    count over its surviving pairs (mean, not total, so a device whose
    pairs failed is not advantaged by the missing entries); ties break
    toward the lexicographically-smallest hostname for determinism.
    Devices with no surviving pair at all cannot stand for election.

    ``compress`` selects the matrix-phase symmetry compression mode —
    ``"off"``, ``"exact"``, or ``"near"`` (``None`` consults
    ``CAMPION_FLEET_COMPRESS``, defaulting to ``near``; booleans keep
    their historical exact/off meaning).  ``exact`` partitions the
    devices into device-fingerprint equivalence classes and analyzes
    only class-representative pairs; every other pair's count is
    expanded from its representatives (0 within a class).  ``near``
    further groups the representatives by *template fingerprint*
    (:mod:`repro.core.near_symmetry`) and analyzes one pair per replay
    signature.  Reports, election, and serialized output are identical
    in every mode — on templated fleets the matrix phase just shrinks
    from O(n²) toward O(k²) for k distinct templates.  Failure
    expansion differs by mode: under ``exact`` a failed representative
    pair marks every pair it stands for as failed with the same cause
    (matching the uncompressed outcome for content-deterministic
    failures — the only reproducible kind); under ``near`` the failure
    stays on content-identical pairs only, and merely near-symmetric
    pairs *fall back to concrete analysis* (counted under
    ``near_symmetry.fallbacks`` and noted on ``FleetReport.notes``),
    since a fault observed on one substitution instance says nothing
    about the others.

    ``workers`` fans the matrix phase over that many processes
    (``None`` consults the ``CAMPION_WORKERS`` environment variable,
    defaulting to serial).  Workers return only difference counts; the
    n-1 reference reports are always computed in this process, so the
    resulting :class:`FleetReport` — and its serialized form — is
    identical whatever the worker count.

    ``timeout`` bounds each pair's wall clock (``None`` consults
    ``CAMPION_PAIR_TIMEOUT``); ``node_limit`` bounds each pair's BDD
    allocation.  Either tripping turns that pair into a ``failed_pairs``
    entry (matrix phase) or a per-component degradation inside the
    report (reference phase) rather than sinking the run.

    Fingerprint memoization is on by default (``use_memo=True``): each
    unique component-content pair is diffed once and replayed across
    the matrix and the reference reports, which is what makes templated
    fleets near-linear instead of quadratic.  Pass a ``memo`` (e.g. a
    :class:`~repro.core.memo.DiffMemo` backed by the persistent
    :class:`~repro.cache.ArtifactCache`) to share results across runs,
    or ``use_memo=False`` for the plain recompute-every-pair baseline.
    Reports and counts are identical in every mode.

    ``set_backend`` names the SemanticDiff set-algebra backend used in
    the matrix workers and the reference reports (``None`` = process
    default; see :mod:`repro.core.setalg`) — another knob that changes
    only the wall clock, never the report.  ``"fleet-atoms"``
    additionally runs fleet-scale atomization before the matrix
    (:class:`~repro.core.fleet_atoms.FleetAtomizer`): each connected
    device group's ACLs are folded into one shared atom universe and
    every intra-group pair count is seeded into the memo as pure bitset
    arithmetic, so the whole matrix phase performs zero BDD applies.
    Per-group budget fallbacks are reported on ``FleetReport.notes``.

    The report also carries per-device *configuration coverage*
    (``FleetReport.coverage``, serialized under schema v4): which
    ACL/route-map lines participated in some localized difference
    versus policies the run found nothing to say about.
    """
    if len(devices) < 2:
        raise ValueError("a fleet comparison needs at least two devices")
    by_name = {device.hostname: device for device in devices}
    if len(by_name) != len(devices):
        seen: Dict[str, int] = {}
        for device in devices:
            seen[device.hostname] = seen.get(device.hostname, 0) + 1
        duplicates = sorted(name for name, count in seen.items() if count > 1)
        raise ValueError(
            "fleet hostnames must be unique; duplicated: " + ", ".join(duplicates)
        )
    hostnames = sorted(by_name)
    workers = resolve_workers(workers)
    timeout = resolve_timeout(timeout)
    compress = resolve_compress(compress)
    backend_name = (
        set_backend if set_backend is not None else default_backend_name()
    )
    fleet_seeding = backend_name == "fleet-atoms"
    # Fleet-scale atomization communicates with the matrix through the
    # memo (seeded counts), so the backend forces one into existence
    # even under use_memo=False — the recompute-every-pair baseline
    # makes no sense for a backend whose whole point is fleet reuse.
    if memo is None and (use_memo or fleet_seeding):
        memo = DiffMemo()

    notes: List[str] = []
    if fleet_seeding:
        atomizer = FleetAtomizer(
            devices,
            memo,
            exhaustive_communities=exhaustive_communities,
            node_limit=node_limit,
        )
        atomizer.seed()
        notes = list(atomizer.notes)

    matrix: Dict[Tuple[str, str], int] = {}
    failed_pairs: Dict[Tuple[str, str], str] = {}
    symmetry: Optional[SymmetryStats] = None

    if reference is None:
        plan = None
        if compress == "near":
            plan, plan_notes = plan_near_pairs(devices)
            notes.extend(plan_notes)
            pair_keys = list(plan.pair_keys)
        elif compress == "exact":
            plan = plan_representative_pairs(
                partition_by_device_fingerprint(devices)
            )
            pair_keys = list(plan.pair_keys)
        else:
            pair_keys = [
                (first, second)
                for index, first in enumerate(hostnames)
                for second in hostnames[index + 1 :]
            ]
        with perf.timer("fleet.matrix"):
            outcomes = pairwise_count_outcomes(
                [(by_name[a], by_name[b]) for a, b in pair_keys],
                workers=workers,
                exhaustive_communities=exhaustive_communities,
                timeout=timeout,
                node_limit=node_limit,
                memo=memo,
                set_backend=set_backend,
            )
        total_pairs = len(hostnames) * (len(hostnames) - 1) // 2
        if plan is not None and plan.mode == "near":
            matrix, failed_pairs, fallback = plan.expand_near(
                hostnames, dict(zip(pair_keys, outcomes))
            )
            if fallback:
                # A failed representative pair must not poison its
                # merely near-symmetric members: analyze them
                # concretely, under the same matrix timer.
                perf.add(FALLBACK_COUNTER, len(fallback))
                notes.append(
                    f"near-symmetry: {len(fallback)} pair(s) fell back"
                    " to concrete analysis after their representative"
                    " pair failed"
                )
                with perf.timer("fleet.matrix"):
                    fallback_outcomes = pairwise_count_outcomes(
                        [(by_name[a], by_name[b]) for a, b in fallback],
                        workers=workers,
                        exhaustive_communities=exhaustive_communities,
                        timeout=timeout,
                        node_limit=node_limit,
                        memo=memo,
                        set_backend=set_backend,
                    )
                for key, outcome in zip(fallback, fallback_outcomes):
                    if outcome.ok:
                        matrix[key] = outcome.result
                    else:
                        failed_pairs[key] = outcome.describe()
            symmetry = SymmetryStats(
                devices=len(hostnames),
                classes=plan.class_count,
                total_pairs=total_pairs,
                analyzed_pairs=len(pair_keys) + len(fallback),
                mode="near",
                fallback_pairs=len(fallback),
            )
            perf.add(
                "fleet.symmetry.pairs_expanded", symmetry.expanded_pairs
            )
        elif plan is not None:
            matrix, failed_pairs = plan.expand(
                hostnames, dict(zip(pair_keys, outcomes))
            )
            symmetry = SymmetryStats(
                devices=len(hostnames),
                classes=plan.class_count,
                total_pairs=total_pairs,
                analyzed_pairs=len(pair_keys),
            )
            perf.add(
                "fleet.symmetry.pairs_expanded", symmetry.expanded_pairs
            )
        else:
            for key, outcome in zip(pair_keys, outcomes):
                if outcome.ok:
                    matrix[key] = outcome.result
                else:
                    failed_pairs[key] = outcome.describe()
        survivors = {
            hostname: [
                count for pair, count in matrix.items() if hostname in pair
            ]
            for hostname in hostnames
        }
        candidates = [h for h in hostnames if survivors[h]]
        if not candidates:
            raise RuntimeError(
                f"fleet comparison failed: all {len(pair_keys)} pairwise "
                "comparisons failed"
            )
        reference = _elect_medoid(candidates, survivors)
    elif reference not in by_name:
        raise ValueError(f"reference {reference!r} is not in the fleet")

    result = FleetReport(
        reference=reference,
        hostnames=hostnames,
        matrix=matrix,
        failed_pairs=failed_pairs,
        notes=sorted(set(notes)),
        symmetry=symmetry,
    )
    with perf.timer("fleet.reports"):
        for hostname in hostnames:
            if hostname == reference:
                continue
            key = (min(reference, hostname), max(reference, hostname))
            # Always re-run oriented reference-first so reports read
            # uniformly; budgets make the retry of a matrix-phase failure
            # degrade per-component instead of repeating the blow-up.
            try:
                report = config_diff(
                    by_name[reference],
                    by_name[hostname],
                    exhaustive_communities=exhaustive_communities,
                    node_limit=node_limit,
                    time_budget=timeout,
                    memo=memo,
                    set_backend=set_backend,
                )
            except Exception as exc:  # noqa: BLE001 - isolate per-device failure
                result.failed_reports[hostname] = f"{type(exc).__name__}: {exc}"
                continue
            result.reports[hostname] = report
            result.matrix.setdefault(key, report.total_differences())
            result.failed_pairs.pop(key, None)
    result.coverage = compute_fleet_coverage(by_name, result)
    return result
