"""Fleet comparison — n-way equivalence with outlier detection.

§5.1 Scenario 3 wants *all* gateway routers to enforce identical
policy; Campion's unit of work is a pair.  This module lifts ConfigDiff
to a fleet: it computes the pairwise difference matrix, elects the
*medoid* configuration (the device minimizing total differences to the
rest — the fleet's de-facto intent, in the spirit of the outlier-
detection related work the paper cites) and reports every other device
against it, so each outlier comes with Campion's full localization.

For a fleet of n devices this costs n(n-1)/2 comparisons for the
matrix; pass ``reference=<hostname>`` to skip the election and compare
everything against a known-good device in n-1 comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.device import DeviceConfig
from .config_diff import config_diff
from .parallel import pairwise_counts, resolve_workers
from .results import CampionReport

__all__ = ["FleetReport", "compare_fleet"]


@dataclass
class FleetReport:
    """Result of an n-way comparison."""

    reference: str
    hostnames: List[str]
    # difference counts for every unordered pair (by hostname)
    matrix: Dict[Tuple[str, str], int] = field(default_factory=dict)
    # full reports of each non-reference device against the reference
    reports: Dict[str, CampionReport] = field(default_factory=dict)

    @property
    def outliers(self) -> List[str]:
        """Devices that differ from the reference."""
        return sorted(
            hostname
            for hostname, report in self.reports.items()
            if not report.is_equivalent()
        )

    @property
    def conforming(self) -> List[str]:
        """Devices equivalent to the reference."""
        return sorted(
            hostname
            for hostname, report in self.reports.items()
            if report.is_equivalent()
        )

    def pair_count(self, first: str, second: str) -> int:
        """Difference count between two devices (order-insensitive)."""
        key = (min(first, second), max(first, second))
        return self.matrix[key]

    def render_summary(self) -> str:
        """One-paragraph fleet verdict for CLI output."""
        lines = [
            f"fleet of {len(self.hostnames)}; reference: {self.reference}",
            f"conforming: {len(self.conforming)}; outliers: {len(self.outliers)}",
        ]
        for hostname in self.outliers:
            report = self.reports[hostname]
            lines.append(
                f"  {hostname}: {report.total_differences()} difference(s) vs {self.reference}"
            )
        return "\n".join(lines)


def compare_fleet(
    devices: Sequence[DeviceConfig],
    reference: Optional[str] = None,
    exhaustive_communities: bool = False,
    workers: Optional[int] = None,
) -> FleetReport:
    """Compare a fleet of configurations intended to be identical.

    With ``reference=None`` the medoid is elected from the pairwise
    difference matrix; ties break toward the lexicographically-smallest
    hostname for determinism.

    ``workers`` fans the O(n²) matrix phase over that many processes
    (``None`` consults the ``CAMPION_WORKERS`` environment variable,
    defaulting to serial).  Workers return only difference counts; the
    n-1 reference reports are always computed in this process, so the
    resulting :class:`FleetReport` — and its serialized form — is
    identical whatever the worker count.
    """
    if len(devices) < 2:
        raise ValueError("a fleet comparison needs at least two devices")
    by_name = {device.hostname: device for device in devices}
    if len(by_name) != len(devices):
        raise ValueError("fleet hostnames must be unique")
    hostnames = sorted(by_name)
    workers = resolve_workers(workers)

    matrix: Dict[Tuple[str, str], int] = {}
    pair_reports: Dict[Tuple[str, str], CampionReport] = {}

    if reference is None:
        pair_keys = [
            (first, second)
            for index, first in enumerate(hostnames)
            for second in hostnames[index + 1 :]
        ]
        if workers > 1:
            counts = pairwise_counts(
                [(by_name[a], by_name[b]) for a, b in pair_keys],
                workers=workers,
                exhaustive_communities=exhaustive_communities,
            )
            matrix.update(zip(pair_keys, counts))
        else:
            for first, second in pair_keys:
                report = config_diff(
                    by_name[first],
                    by_name[second],
                    exhaustive_communities=exhaustive_communities,
                )
                matrix[(first, second)] = report.total_differences()
                pair_reports[(first, second)] = report
        totals = {
            hostname: sum(
                count for pair, count in matrix.items() if hostname in pair
            )
            for hostname in hostnames
        }
        reference = min(hostnames, key=lambda h: (totals[h], h))
    elif reference not in by_name:
        raise ValueError(f"reference {reference!r} is not in the fleet")

    result = FleetReport(reference=reference, hostnames=hostnames, matrix=matrix)
    for hostname in hostnames:
        if hostname == reference:
            continue
        key = (min(reference, hostname), max(reference, hostname))
        report = pair_reports.get(key)
        if report is None or key[0] != reference:
            # Re-run oriented reference-first so reports read uniformly.
            report = config_diff(
                by_name[reference],
                by_name[hostname],
                exhaustive_communities=exhaustive_communities,
            )
        result.reports[hostname] = report
        result.matrix.setdefault(key, report.total_differences())
    return result
