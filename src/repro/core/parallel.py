"""Process-parallel fan-out for fleet and multi-pair comparisons.

BDD managers are process-local by design: nodes are integer ids into a
manager's private arrays, so handles cannot cross process boundaries.
The fan-out therefore ships *configurations* out and brings *picklable
results* back — difference counts for the fleet matrix, or full report
dictionaries produced by :mod:`repro.core.serialize` for batch pairwise
comparison.  Each worker runs :func:`repro.core.config_diff.config_diff`
with its own fresh managers (``config_diff`` allocates its spaces
internally), so no shared state is needed.

Fault isolation (the part the first parallel cut lacked): every task
produces a :class:`PairOutcome` — ``ok``, ``error``, ``timeout``, or
``crashed`` — instead of letting one worker exception poison the whole
fan-out.  A Python-level worker exception travels back as ``error``;
*worker death* (OOM kill, segfault, a stray ``SIGKILL``) surfaces as
``BrokenProcessPool`` from the executor and is classified as
``crashed`` with a ``worker-crashed`` diagnostic rather than an
unhandled traceback.  The pool is respawned with jittered backoff (up
to ``_MAX_POOL_RESPAWNS`` generations per fan-out, counted under
``parallel.pool_respawns``) and the still-unresolved tasks resubmitted;
results that completed before the pool died are harvested, never
recomputed.  Failed pairs get one automatic in-parent serial retry
(bounded by the pair time budget via the BDD engine's deadline checks),
and worker processes are killed and joined deterministically on both
``KeyboardInterrupt`` and normal exit, so stuck workers never outlive
the run as leaked fork children.

Worker resolution: an explicit ``workers=N`` argument wins; ``None``
falls back to the ``CAMPION_WORKERS`` environment variable, then to 1
(serial).  ``workers=1`` never touches :mod:`multiprocessing` — callers
on constrained platforms keep the exact serial code path.  The per-pair
wall-clock timeout resolves the same way through ``timeout=`` and the
``CAMPION_PAIR_TIMEOUT`` environment variable (``None`` = unbounded).

The ``fork`` start method is preferred (cheap, inherits the parsed
configs' module state); platforms without it fall back to the default
context, which is why the worker entry points are module-level
functions.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import random
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..model.device import DeviceConfig
from .config_diff import config_diff, config_diff_summary
from .memo import DiffMemo
from .serialize import report_to_dict

__all__ = [
    "WORKERS_ENV",
    "TIMEOUT_ENV",
    "PairOutcome",
    "SymmetryPlan",
    "plan_representative_pairs",
    "resolve_workers",
    "resolve_timeout",
    "pairwise_counts",
    "pairwise_count_outcomes",
    "diff_pairs",
    "diff_pair_outcomes",
]

WORKERS_ENV = "CAMPION_WORKERS"
TIMEOUT_ENV = "CAMPION_PAIR_TIMEOUT"

#: Fresh pool generations granted per fan-out after worker death.  The
#: cap bounds the worst case — a task that deterministically kills its
#: worker burns one generation per respawn — while one environmental
#: kill (OOM reaper picking a victim) heals on the first respawn.
_MAX_POOL_RESPAWNS = 2

#: Base of the jittered exponential backoff between pool respawns, in
#: seconds.  Small on purpose: a respawn is cheap, and the jitter only
#: needs to decorrelate sibling fan-outs hammering a loaded machine.
_RESPAWN_BACKOFF = 0.05

#: Diagnostic attached to pairs whose worker died.  Structured ("worker
#: -crashed" prefix) so the service supervisor and fleet reports can
#: recognize crash casualties without string-matching tracebacks.
_CRASH_DIAGNOSTIC = (
    "worker-crashed: worker process died (OOM kill, segfault, or external"
    " signal) before returning a result"
)

_Pair = Tuple[DeviceConfig, DeviceConfig]

# Task tuple shipped to workers: the pair plus the analysis options that
# must apply inside the worker process (budgets arm the worker's own BDD
# managers, so a blow-up degrades in-worker before the parent-side
# timeout ever has to fire).  Slot 5 is the fingerprint-keyed DiffMemo
# (or None): every task in one fan-out references the same memo object,
# so each worker process accumulates component results across its tasks
# and drains them back via ``PairOutcome.memo_updates``.  Slot 6 is the
# SemanticDiff set-algebra backend *name* (or None for the worker's
# default) — backend instances hold BDD handles and never cross
# processes, names always pickle.
_Task = Tuple[
    DeviceConfig,
    DeviceConfig,
    bool,
    Optional[int],
    Optional[float],
    Optional[DiffMemo],
    Optional[str],
]


@dataclass
class PairOutcome:
    """Result of one fanned-out pair comparison.

    ``status`` is ``"ok"`` (``result`` holds the payload), ``"error"``
    (the worker raised; ``error`` holds the rendered cause),
    ``"timeout"`` (the pair exceeded its wall-clock budget and its
    worker was terminated), or ``"crashed"`` (the worker process died —
    OOM kill, segfault — and the pool's respawn budget ran out before
    the pair completed).  ``retried`` marks outcomes that went through
    the automatic in-parent serial retry — whatever its final status.
    """

    index: int
    status: str
    result: Optional[object] = None
    error: str = ""
    retried: bool = False
    # Memo entries this task's process computed (fingerprint key ->
    # entry dict); the parent merges them so later pairs — and the
    # fleet reference phase — replay instead of recomputing.
    memo_updates: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the pair produced a result."""
        return self.status == "ok"

    def describe(self) -> str:
        """Short failure description for summaries."""
        if self.ok:
            return "ok"
        suffix = " (after retry)" if self.retried else ""
        return f"{self.status}: {self.error}{suffix}"


@dataclass(frozen=True)
class SymmetryPlan:
    """Representative-pair plan for a symmetry-compressed fleet matrix.

    Built from the device-fingerprint equivalence classes
    (:func:`repro.model.fingerprint.partition_by_device_fingerprint`):
    only unordered pairs of class *representatives* are analyzed, and
    every full-fleet pair is recovered by :meth:`expand` — intra-class
    pairs are zero differences by the fingerprint soundness argument,
    cross-class pairs copy their representative pair's outcome.
    """

    #: hostname -> its class representative (smallest hostname in class)
    representative: Dict[str, str]
    #: representative -> all class members, sorted (representative first)
    members: Dict[str, Tuple[str, ...]]
    #: the unordered representative pairs to actually analyze, sorted
    pair_keys: Tuple[Tuple[str, str], ...]
    #: ``"exact"`` (fingerprint classes only) or ``"near"`` (template
    #: classes; built by ``repro.core.near_symmetry.plan_near_pairs``)
    mode: str = "exact"
    #: near mode only: exact-representative pair -> the analyzed pair
    #: whose outcome it replays (identity entries omitted)
    replay_key: Dict[Tuple[str, str], Tuple[str, str]] = field(
        default_factory=dict
    )
    #: near mode only: template fingerprint -> exact-class
    #: representatives sharing it (post-verification)
    template_classes: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict
    )

    @property
    def class_count(self) -> int:
        """Number of equivalence classes (== number of representatives)."""
        if self.mode == "near":
            return len(self.template_classes)
        return len(self.members)

    def pair_key(self, first: str, second: str) -> Tuple[str, str]:
        """The representative pair standing in for ``(first, second)``."""
        rep1 = self.representative[first]
        rep2 = self.representative[second]
        return (min(rep1, rep2), max(rep1, rep2))

    def expand(
        self,
        hostnames: Sequence[str],
        outcomes: Dict[Tuple[str, str], "PairOutcome"],
    ) -> Tuple[Dict[Tuple[str, str], int], Dict[Tuple[str, str], str]]:
        """The full ``(matrix, failed_pairs)`` from representative outcomes.

        Same-class pairs expand to count 0 without consulting
        ``outcomes`` at all; cross-class pairs take their representative
        pair's count (or its failure cause, verbatim, so a failed
        representative pair fails every pair it stands for — matching
        what the uncompressed run would record for a deterministic
        failure).
        """
        matrix: Dict[Tuple[str, str], int] = {}
        failed: Dict[Tuple[str, str], str] = {}
        ordered = sorted(hostnames)
        for index, first in enumerate(ordered):
            for second in ordered[index + 1 :]:
                key = (first, second)
                if self.representative[first] == self.representative[second]:
                    matrix[key] = 0
                    continue
                outcome = outcomes[self.pair_key(first, second)]
                if outcome.ok:
                    matrix[key] = outcome.result
                else:
                    failed[key] = outcome.describe()
        return matrix, failed

    def expand_near(
        self,
        hostnames: Sequence[str],
        outcomes: Dict[Tuple[str, str], "PairOutcome"],
    ) -> Tuple[
        Dict[Tuple[str, str], int],
        Dict[Tuple[str, str], str],
        List[Tuple[str, str]],
    ]:
        """``(matrix, failed_pairs, fallback_pairs)`` for a near plan.

        Intra-exact-class pairs are zero and exact-class members copy
        their representative pair, as in :meth:`expand`; a
        representative pair that replays *another* signature
        representative takes that pair's count.  Failure is where near
        mode diverges from exact: a failed analyzed pair fails only the
        pairs that are content-identical to it (same exact
        representatives) — its merely near-symmetric member pairs are
        returned as ``fallback_pairs`` for concrete analysis, so one
        targeted fault never poisons a whole template class.
        """
        matrix: Dict[Tuple[str, str], int] = {}
        failed: Dict[Tuple[str, str], str] = {}
        fallback: List[Tuple[str, str]] = []
        ordered = sorted(hostnames)
        for index, first in enumerate(ordered):
            for second in ordered[index + 1 :]:
                key = (first, second)
                if self.representative[first] == self.representative[second]:
                    matrix[key] = 0
                    continue
                rep_key = self.pair_key(first, second)
                replay = self.replay_key.get(rep_key, rep_key)
                outcome = outcomes[replay]
                if outcome.ok:
                    matrix[key] = outcome.result
                elif rep_key == replay:
                    failed[key] = outcome.describe()
                else:
                    fallback.append(key)
        return matrix, failed, fallback


def plan_representative_pairs(
    classes: Dict[str, Sequence[str]]
) -> SymmetryPlan:
    """Build a :class:`SymmetryPlan` from fingerprint equivalence classes.

    ``classes`` maps each device fingerprint to the hostnames sharing
    it (:func:`repro.model.fingerprint.partition_by_device_fingerprint`).
    The representative of each class is its lexicographically-smallest
    hostname, so the plan — and therefore which pairs run — is fully
    determined by the fleet's content, never by input order.
    """
    representative: Dict[str, str] = {}
    members: Dict[str, Tuple[str, ...]] = {}
    for hostnames in classes.values():
        group = tuple(sorted(hostnames))
        for hostname in group:
            representative[hostname] = group[0]
        members[group[0]] = group
    reps = sorted(members)
    pair_keys = tuple(
        (first, second)
        for index, first in enumerate(reps)
        for second in reps[index + 1 :]
    )
    return SymmetryPlan(
        representative=representative, members=members, pair_keys=pair_keys
    )


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: argument, else ``CAMPION_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Resolve the per-pair wall-clock timeout in seconds.

    Argument wins, else ``CAMPION_PAIR_TIMEOUT``, else ``None``
    (unbounded, the historical behavior).
    """
    if timeout is None:
        raw = os.environ.get(TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"{TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
            ) from None
    if timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    return timeout


def _count_pair(task: _Task) -> int:
    device1, device2, exhaustive, node_limit, time_budget, memo, backend = task
    if memo is not None:
        return config_diff_summary(
            device1,
            device2,
            exhaustive_communities=exhaustive,
            node_limit=node_limit,
            time_budget=time_budget,
            memo=memo,
            set_backend=backend,
        )
    report = config_diff(
        device1,
        device2,
        exhaustive_communities=exhaustive,
        node_limit=node_limit,
        time_budget=time_budget,
        set_backend=backend,
    )
    return report.total_differences()


def _diff_pair(task: _Task) -> Dict:
    device1, device2, exhaustive, node_limit, time_budget, memo, backend = task
    report = config_diff(
        device1,
        device2,
        exhaustive_communities=exhaustive,
        node_limit=node_limit,
        time_budget=time_budget,
        memo=memo,
        set_backend=backend,
    )
    return report_to_dict(report)


# The shared task list is shipped to each worker once (inherited for
# free under ``fork``, pickled once per worker otherwise) and tasks are
# dispatched by index, so per-task IPC is a couple of integers instead
# of two full device configurations.
_WORKER_TASKS: Optional[List] = None


def _init_worker(tasks: List) -> None:
    global _WORKER_TASKS
    _WORKER_TASKS = tasks


def _count_at(index: int) -> Tuple[str, object]:
    return _guarded_call(_count_pair, _WORKER_TASKS[index])


def _diff_at(index: int) -> Tuple[str, object]:
    return _guarded_call(_diff_pair, _WORKER_TASKS[index])


def _guarded_call(
    function: Callable, task: _Task
) -> Tuple[str, object, Dict]:
    """Run one task in a worker, returning a tagged, always-picklable
    triple ``(status, payload, memo_updates)``.

    Catching here (rather than at ``.get()`` in the parent) keeps
    arbitrary — possibly unpicklable — worker exceptions from breaking
    result transport.  Memo updates are drained even on error: entries
    recorded before the failure are clean, completed component results
    and stay valid.
    """
    memo = task[5] if len(task) > 5 else None

    def _updates() -> Dict:
        return memo.take_updates() if isinstance(memo, DiffMemo) else {}

    try:
        result = function(task)
    except Exception as exc:  # noqa: BLE001 - isolation boundary by design
        return ("error", f"{type(exc).__name__}: {exc}", _updates())
    return ("ok", result, _updates())


def _build_tasks(
    pairs: Sequence[_Pair],
    exhaustive_communities: bool,
    node_limit: Optional[int],
    timeout: Optional[float],
    memo: Optional[DiffMemo],
    set_backend: Optional[str],
) -> List[_Task]:
    return [
        (d1, d2, exhaustive_communities, node_limit, timeout, memo, set_backend)
        for d1, d2 in pairs
    ]


def _serial_outcomes(function: Callable, tasks: List[_Task]) -> List[PairOutcome]:
    """The workers=1 path: no multiprocessing, failures still isolated.

    Wall-clock timeouts cannot terminate an in-process task; the pair
    time budget shipped inside each task bounds the BDD phase via the
    engine's deadline checks instead, so a blow-up degrades into a
    partial report rather than hanging the run.
    """
    outcomes = []
    for index, task in enumerate(tasks):
        tag, payload, updates = _guarded_call(function, task)
        if tag == "ok":
            outcomes.append(
                PairOutcome(index, "ok", result=payload, memo_updates=updates)
            )
        else:
            perf.add("parallel.errors")
            outcomes.append(
                PairOutcome(
                    index, "error", error=str(payload), memo_updates=updates
                )
            )
    return outcomes


def _make_executor(
    tasks: List[_Task], workers: int
) -> concurrent.futures.ProcessPoolExecutor:
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        context = multiprocessing.get_context()
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=context,
        initializer=_init_worker,
        initargs=(tasks,),
    )


def _shutdown_executor(
    executor: concurrent.futures.ProcessPoolExecutor,
) -> None:
    """Deterministic teardown: kill stragglers and reap every child.

    Timed-out pairs are still grinding in their worker, so a plain
    ``shutdown(wait=True)`` could block on them indefinitely; pending
    futures are cancelled, the worker processes killed outright, and
    only then does the final ``shutdown`` join the (now dead) children
    — the executor equivalent of the old ``terminate()``/``join()``.
    """
    # shutdown() drops the executor's process table, so grab it first.
    processes = dict(getattr(executor, "_processes", None) or {})
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already dead
            pass
    for process in list(processes.values()):
        try:
            process.join(timeout=5.0)
        except Exception:  # pragma: no cover - defensive
            pass
    try:
        executor.shutdown(wait=True, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass


def _settle(
    outcomes: List[Optional[PairOutcome]],
    index: int,
    tag: str,
    payload: object,
    updates: Dict,
) -> None:
    """Record one transported worker result as this task's outcome."""
    if tag == "ok":
        outcomes[index] = PairOutcome(
            index, "ok", result=payload, memo_updates=updates
        )
    else:
        perf.add("parallel.errors")
        outcomes[index] = PairOutcome(
            index, "error", error=str(payload), memo_updates=updates
        )


def _pool_round(
    indexed: Callable,
    tasks: List[_Task],
    workers: int,
    timeout: Optional[float],
    pending: List[int],
    outcomes: List[Optional[PairOutcome]],
) -> bool:
    """Run one executor generation over the still-unresolved tasks.

    Settles an outcome for every task it can; returns ``True`` when the
    pool broke (a worker process died) leaving tasks unresolved, so the
    caller can decide whether to respawn.  Collection is sequential
    while execution is concurrent, so the per-future ``timeout`` wait
    is an upper bound on useful work per pair rather than an exact
    stopwatch — the same contract the old ``apply_async`` loop had.
    """
    executor = _make_executor(tasks, workers)
    futures: Dict[int, concurrent.futures.Future] = {}
    broken = False
    try:
        try:
            for index in pending:
                futures[index] = executor.submit(indexed, index)
        except (BrokenProcessPool, RuntimeError):
            # The pool died while we were still submitting (e.g. the
            # initializer's worker was killed); whatever got in is
            # collected below, the rest stays pending for the respawn.
            broken = True
        for index in pending:
            future = futures.get(index)
            if future is None:
                break
            try:
                tag, payload, updates = future.result(timeout)
            except concurrent.futures.TimeoutError:
                perf.add("parallel.timeouts")
                outcomes[index] = PairOutcome(
                    index,
                    "timeout",
                    error=f"pair exceeded {timeout:.1f}s wall-clock timeout",
                )
            except BrokenProcessPool:
                broken = True
                break
            except concurrent.futures.CancelledError:
                broken = True
                break
            except Exception as exc:  # transport failure
                perf.add("parallel.errors")
                outcomes[index] = PairOutcome(
                    index, "error", error=f"{type(exc).__name__}: {exc}"
                )
            else:
                _settle(outcomes, index, tag, payload, updates)
        if broken:
            # Harvest everything that completed before the pool died —
            # those results are clean and must not be recomputed.
            for index in pending:
                future = futures.get(index)
                if (
                    future is None
                    or outcomes[index] is not None
                    or not future.done()
                ):
                    continue
                try:
                    tag, payload, updates = future.result(0)
                except Exception:  # broken/cancelled: stays pending
                    continue
                _settle(outcomes, index, tag, payload, updates)
    finally:
        _shutdown_executor(executor)
    return broken


def _pool_outcomes(
    indexed: Callable,
    tasks: List[_Task],
    workers: int,
    timeout: Optional[float],
) -> List[PairOutcome]:
    """Fan tasks over worker processes, one PairOutcome per task.

    Worker *death* (as opposed to a worker exception, which travels
    back as a tagged result) surfaces as ``BrokenProcessPool``: the
    generation's completed results are harvested, the pool is respawned
    with jittered exponential backoff, and the unresolved tasks are
    resubmitted.  A broken pool cannot name its victim — *every*
    unfinished future breaks — so when the batch respawn budget runs
    out (a task that deterministically kills its worker burns one
    generation per round), the survivors move to an *isolation pass*:
    one single-task pool each.  A lone task that breaks its own pool is
    definitively the culprit and is classified ``crashed`` with a
    structured ``worker-crashed`` diagnostic (the in-parent serial
    retry, :func:`_retry_failures`, remains its last chance); innocent
    bystanders complete normally instead of being misblamed.
    """
    outcomes: List[Optional[PairOutcome]] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    respawns_left = _MAX_POOL_RESPAWNS
    generation = 0
    while pending:
        broken = _pool_round(
            indexed, tasks, workers, timeout, pending, outcomes
        )
        pending = [index for index in pending if outcomes[index] is None]
        if not pending:
            break
        if not broken:  # pragma: no cover - defensive: round settles all
            for index in pending:
                outcomes[index] = PairOutcome(
                    index, "error", error="pool round left no outcome"
                )
            break
        perf.add("parallel.worker_crashes")
        if respawns_left <= 0:
            break
        respawns_left -= 1
        perf.add("parallel.pool_respawns")
        time.sleep(
            _RESPAWN_BACKOFF * (2**generation) * (1.0 + random.random())
        )
        generation += 1
    # Isolation pass: definitive blame for repeated pool deaths.
    for index in pending:
        if outcomes[index] is not None:
            continue
        perf.add("parallel.pool_respawns")
        _pool_round(indexed, tasks, 1, timeout, [index], outcomes)
        if outcomes[index] is None:
            perf.add("parallel.errors")
            outcomes[index] = PairOutcome(
                index, "crashed", error=_CRASH_DIAGNOSTIC
            )
    return outcomes  # type: ignore[return-value]


def _retry_failures(
    function: Callable,
    tasks: List[_Task],
    outcomes: List[PairOutcome],
    timeout: Optional[float],
) -> None:
    """One in-parent serial retry for each failed pair, in place.

    A worker crash can be environmental (OOM killer, fork-state
    corruption); the retry runs in the parent where the BDD deadline —
    shipped inside the task as its time budget — bounds the attempt, so
    a genuinely pathological pair degrades into a budget-aborted report
    instead of hanging the parent.
    """
    for index, outcome in enumerate(outcomes):
        if outcome.ok:
            continue
        perf.add("parallel.retries")
        tag, payload, updates = _guarded_call(function, tasks[index])
        if tag == "ok":
            outcomes[index] = PairOutcome(
                index, "ok", result=payload, retried=True, memo_updates=updates
            )
        else:
            outcomes[index] = PairOutcome(
                index, outcome.status, error=outcome.error or str(payload),
                retried=True, memo_updates=updates,
            )


def _run_outcomes(
    function: Callable,
    indexed: Callable,
    pairs: Sequence[_Pair],
    workers: Optional[int],
    exhaustive_communities: bool,
    timeout: Optional[float],
    node_limit: Optional[int],
    retry: bool,
    memo: Optional[DiffMemo] = None,
    set_backend: Optional[str] = None,
) -> List[PairOutcome]:
    workers = resolve_workers(workers)
    timeout = resolve_timeout(timeout)
    tasks = _build_tasks(
        pairs, exhaustive_communities, node_limit, timeout, memo, set_backend
    )
    perf.add("parallel.tasks", len(tasks))
    with perf.timer("parallel.map"):
        if workers == 1 or len(tasks) <= 1:
            outcomes = _serial_outcomes(function, tasks)
        else:
            outcomes = _pool_outcomes(indexed, tasks, workers, timeout)
        if retry and any(not outcome.ok for outcome in outcomes):
            _retry_failures(function, tasks, outcomes, timeout)
    if memo is not None:
        # Fold worker-computed entries into the parent memo in input
        # order (deterministic whatever the completion order; entries
        # for equal keys are identical, so collisions are benign).
        for outcome in outcomes:
            if outcome.memo_updates:
                memo.merge(outcome.memo_updates)
    return outcomes


def pairwise_count_outcomes(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
    timeout: Optional[float] = None,
    node_limit: Optional[int] = None,
    retry: bool = True,
    memo: Optional[DiffMemo] = None,
    set_backend: Optional[str] = None,
) -> List[PairOutcome]:
    """Difference-count outcomes for each device pair, fanned over workers.

    Outcomes are in input order; ``ok`` results are identical to running
    ``config_diff`` serially on each pair (``config_diff`` is
    deterministic), only the wall-clock differs.  With ``memo`` each
    unique fingerprint-pair component diff runs once per process at
    most; worker-computed entries are merged back into the parent memo
    before this returns.  ``set_backend`` names the SemanticDiff
    set-algebra backend applied inside each worker (``None`` = each
    worker's process default); results are backend-independent.
    """
    return _run_outcomes(
        _count_pair,
        _count_at,
        pairs,
        workers,
        exhaustive_communities,
        timeout,
        node_limit,
        retry,
        memo=memo,
        set_backend=set_backend,
    )


def diff_pair_outcomes(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
    timeout: Optional[float] = None,
    node_limit: Optional[int] = None,
    retry: bool = True,
    memo: Optional[DiffMemo] = None,
    set_backend: Optional[str] = None,
) -> List[PairOutcome]:
    """Full ConfigDiff report-dict outcomes for each pair, fanned out.

    ``ok`` outcomes carry :func:`repro.core.serialize.report_to_dict`
    output (the BDD handles inside a :class:`CampionReport` cannot cross
    processes, the serialized form can).  Order matches the input pairs.
    ``memo`` lets zero-difference components be skipped per pair, and
    ``set_backend`` names the per-worker set-algebra backend; the
    reports are identical either way.
    """
    return _run_outcomes(
        _diff_pair,
        _diff_at,
        pairs,
        workers,
        exhaustive_communities,
        timeout,
        node_limit,
        retry,
        memo=memo,
        set_backend=set_backend,
    )


def _unwrap(outcomes: List[PairOutcome]) -> List:
    """Strict view: results in order, raising on the first failed pair."""
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(f"pair {outcome.index} failed: {outcome.describe()}")
    return [outcome.result for outcome in outcomes]


def pairwise_counts(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
) -> List[int]:
    """Difference counts for each device pair (strict; raises on failure).

    The historical all-or-nothing interface; fault-tolerant callers
    want :func:`pairwise_count_outcomes`.
    """
    return _unwrap(
        pairwise_count_outcomes(
            pairs,
            workers=workers,
            exhaustive_communities=exhaustive_communities,
            timeout=None,
            retry=False,
        )
    )


def diff_pairs(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
) -> List[Dict]:
    """Full ConfigDiff report dictionaries per pair (strict; raises on
    failure).  Fault-tolerant callers want :func:`diff_pair_outcomes`."""
    return _unwrap(
        diff_pair_outcomes(
            pairs,
            workers=workers,
            exhaustive_communities=exhaustive_communities,
            timeout=None,
            retry=False,
        )
    )
