"""Process-parallel fan-out for fleet and multi-pair comparisons.

BDD managers are process-local by design: nodes are integer ids into a
manager's private arrays, so handles cannot cross process boundaries.
The fan-out therefore ships *configurations* out and brings *picklable
results* back — difference counts for the fleet matrix, or full report
dictionaries produced by :mod:`repro.core.serialize` for batch pairwise
comparison.  Each worker runs :func:`repro.core.config_diff.config_diff`
with its own fresh managers (``config_diff`` allocates its spaces
internally), so no shared state is needed.

Fault isolation (the part the first parallel cut lacked): every task
produces a :class:`PairOutcome` — ``ok``, ``error``, or ``timeout`` —
instead of letting one worker exception poison the whole ``pool.map``.
Failed pairs get one automatic in-parent serial retry (bounded by the
pair time budget via the BDD engine's deadline checks), and the pool is
torn down with ``terminate()``/``join()`` deterministically on both
``KeyboardInterrupt`` and normal exit, so stuck workers never outlive
the run as leaked fork children.

Worker resolution: an explicit ``workers=N`` argument wins; ``None``
falls back to the ``CAMPION_WORKERS`` environment variable, then to 1
(serial).  ``workers=1`` never touches :mod:`multiprocessing` — callers
on constrained platforms keep the exact serial code path.  The per-pair
wall-clock timeout resolves the same way through ``timeout=`` and the
``CAMPION_PAIR_TIMEOUT`` environment variable (``None`` = unbounded).

The ``fork`` start method is preferred (cheap, inherits the parsed
configs' module state); platforms without it fall back to the default
context, which is why the worker entry points are module-level
functions.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..model.device import DeviceConfig
from .config_diff import config_diff
from .serialize import report_to_dict

__all__ = [
    "WORKERS_ENV",
    "TIMEOUT_ENV",
    "PairOutcome",
    "resolve_workers",
    "resolve_timeout",
    "pairwise_counts",
    "pairwise_count_outcomes",
    "diff_pairs",
    "diff_pair_outcomes",
]

WORKERS_ENV = "CAMPION_WORKERS"
TIMEOUT_ENV = "CAMPION_PAIR_TIMEOUT"

_Pair = Tuple[DeviceConfig, DeviceConfig]

# Task tuple shipped to workers: the pair plus the analysis options that
# must apply inside the worker process (budgets arm the worker's own BDD
# managers, so a blow-up degrades in-worker before the parent-side
# timeout ever has to fire).
_Task = Tuple[DeviceConfig, DeviceConfig, bool, Optional[int], Optional[float]]


@dataclass
class PairOutcome:
    """Result of one fanned-out pair comparison.

    ``status`` is ``"ok"`` (``result`` holds the payload), ``"error"``
    (the worker raised; ``error`` holds the rendered cause), or
    ``"timeout"`` (the pair exceeded its wall-clock budget and its
    worker was terminated).  ``retried`` marks outcomes that went
    through the automatic in-parent serial retry — whatever its final
    status.
    """

    index: int
    status: str
    result: Optional[object] = None
    error: str = ""
    retried: bool = False

    @property
    def ok(self) -> bool:
        """Whether the pair produced a result."""
        return self.status == "ok"

    def describe(self) -> str:
        """Short failure description for summaries."""
        if self.ok:
            return "ok"
        suffix = " (after retry)" if self.retried else ""
        return f"{self.status}: {self.error}{suffix}"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: argument, else ``CAMPION_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Resolve the per-pair wall-clock timeout in seconds.

    Argument wins, else ``CAMPION_PAIR_TIMEOUT``, else ``None``
    (unbounded, the historical behavior).
    """
    if timeout is None:
        raw = os.environ.get(TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"{TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
            ) from None
    if timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    return timeout


def _count_pair(task: _Task) -> int:
    device1, device2, exhaustive, node_limit, time_budget = task
    report = config_diff(
        device1,
        device2,
        exhaustive_communities=exhaustive,
        node_limit=node_limit,
        time_budget=time_budget,
    )
    return report.total_differences()


def _diff_pair(task: _Task) -> Dict:
    device1, device2, exhaustive, node_limit, time_budget = task
    report = config_diff(
        device1,
        device2,
        exhaustive_communities=exhaustive,
        node_limit=node_limit,
        time_budget=time_budget,
    )
    return report_to_dict(report)


# The shared task list is shipped to each worker once (inherited for
# free under ``fork``, pickled once per worker otherwise) and tasks are
# dispatched by index, so per-task IPC is a couple of integers instead
# of two full device configurations.
_WORKER_TASKS: Optional[List] = None


def _init_worker(tasks: List) -> None:
    global _WORKER_TASKS
    _WORKER_TASKS = tasks


def _count_at(index: int) -> Tuple[str, object]:
    return _guarded_call(_count_pair, _WORKER_TASKS[index])


def _diff_at(index: int) -> Tuple[str, object]:
    return _guarded_call(_diff_pair, _WORKER_TASKS[index])


def _guarded_call(function: Callable, task: _Task) -> Tuple[str, object]:
    """Run one task in a worker, returning a tagged, always-picklable pair.

    Catching here (rather than at ``.get()`` in the parent) keeps
    arbitrary — possibly unpicklable — worker exceptions from breaking
    result transport.
    """
    try:
        return ("ok", function(task))
    except Exception as exc:  # noqa: BLE001 - isolation boundary by design
        return ("error", f"{type(exc).__name__}: {exc}")


def _build_tasks(
    pairs: Sequence[_Pair],
    exhaustive_communities: bool,
    node_limit: Optional[int],
    timeout: Optional[float],
) -> List[_Task]:
    return [
        (d1, d2, exhaustive_communities, node_limit, timeout) for d1, d2 in pairs
    ]


def _serial_outcomes(function: Callable, tasks: List[_Task]) -> List[PairOutcome]:
    """The workers=1 path: no multiprocessing, failures still isolated.

    Wall-clock timeouts cannot terminate an in-process task; the pair
    time budget shipped inside each task bounds the BDD phase via the
    engine's deadline checks instead, so a blow-up degrades into a
    partial report rather than hanging the run.
    """
    outcomes = []
    for index, task in enumerate(tasks):
        tag, payload = _guarded_call(function, task)
        if tag == "ok":
            outcomes.append(PairOutcome(index, "ok", result=payload))
        else:
            perf.add("parallel.errors")
            outcomes.append(PairOutcome(index, "error", error=str(payload)))
    return outcomes


def _pool_outcomes(
    indexed: Callable,
    tasks: List[_Task],
    workers: int,
    timeout: Optional[float],
) -> List[PairOutcome]:
    """Fan tasks over a pool, collecting one PairOutcome per task.

    Tasks are submitted individually (``apply_async``) so one worker's
    failure or overrun surfaces as that task's outcome the moment its
    result is collected, not after every task ran.  The pool is always
    ``terminate()``d and ``join()``ed on the way out — including on
    ``KeyboardInterrupt`` — so a stuck or still-grinding worker cannot
    leak as an orphaned fork child.

    ``timeout`` is the per-pair allowance granted to each collection
    wait; because collection is sequential while execution is
    concurrent, a task has normally been running at least that long by
    the time its wait expires, making this an upper bound on useful
    work per pair rather than an exact stopwatch.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        context = multiprocessing.get_context()
    processes = min(workers, len(tasks))
    outcomes: List[Optional[PairOutcome]] = [None] * len(tasks)
    pool = context.Pool(
        processes=processes, initializer=_init_worker, initargs=(tasks,)
    )
    try:
        futures = [
            pool.apply_async(indexed, (index,)) for index in range(len(tasks))
        ]
        pool.close()
        for index, future in enumerate(futures):
            try:
                tag, payload = future.get(timeout)
            except multiprocessing.TimeoutError:
                perf.add("parallel.timeouts")
                outcomes[index] = PairOutcome(
                    index,
                    "timeout",
                    error=f"pair exceeded {timeout:.1f}s wall-clock timeout",
                )
            except Exception as exc:  # worker or transport died
                perf.add("parallel.errors")
                outcomes[index] = PairOutcome(
                    index, "error", error=f"{type(exc).__name__}: {exc}"
                )
            else:
                if tag == "ok":
                    outcomes[index] = PairOutcome(index, "ok", result=payload)
                else:
                    perf.add("parallel.errors")
                    outcomes[index] = PairOutcome(
                        index, "error", error=str(payload)
                    )
    finally:
        # Deterministic teardown: kill stragglers (timed-out pairs are
        # still grinding in their worker) and reap every child now.
        pool.terminate()
        pool.join()
    return outcomes  # type: ignore[return-value]


def _retry_failures(
    function: Callable,
    tasks: List[_Task],
    outcomes: List[PairOutcome],
    timeout: Optional[float],
) -> None:
    """One in-parent serial retry for each failed pair, in place.

    A worker crash can be environmental (OOM killer, fork-state
    corruption); the retry runs in the parent where the BDD deadline —
    shipped inside the task as its time budget — bounds the attempt, so
    a genuinely pathological pair degrades into a budget-aborted report
    instead of hanging the parent.
    """
    for index, outcome in enumerate(outcomes):
        if outcome.ok:
            continue
        perf.add("parallel.retries")
        tag, payload = _guarded_call(function, tasks[index])
        if tag == "ok":
            outcomes[index] = PairOutcome(
                index, "ok", result=payload, retried=True
            )
        else:
            outcomes[index] = PairOutcome(
                index, outcome.status, error=outcome.error or str(payload),
                retried=True,
            )


def _run_outcomes(
    function: Callable,
    indexed: Callable,
    pairs: Sequence[_Pair],
    workers: Optional[int],
    exhaustive_communities: bool,
    timeout: Optional[float],
    node_limit: Optional[int],
    retry: bool,
) -> List[PairOutcome]:
    workers = resolve_workers(workers)
    timeout = resolve_timeout(timeout)
    tasks = _build_tasks(pairs, exhaustive_communities, node_limit, timeout)
    perf.add("parallel.tasks", len(tasks))
    with perf.timer("parallel.map"):
        if workers == 1 or len(tasks) <= 1:
            outcomes = _serial_outcomes(function, tasks)
        else:
            outcomes = _pool_outcomes(indexed, tasks, workers, timeout)
        if retry and any(not outcome.ok for outcome in outcomes):
            _retry_failures(function, tasks, outcomes, timeout)
    return outcomes


def pairwise_count_outcomes(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
    timeout: Optional[float] = None,
    node_limit: Optional[int] = None,
    retry: bool = True,
) -> List[PairOutcome]:
    """Difference-count outcomes for each device pair, fanned over workers.

    Outcomes are in input order; ``ok`` results are identical to running
    ``config_diff`` serially on each pair (``config_diff`` is
    deterministic), only the wall-clock differs.
    """
    return _run_outcomes(
        _count_pair,
        _count_at,
        pairs,
        workers,
        exhaustive_communities,
        timeout,
        node_limit,
        retry,
    )


def diff_pair_outcomes(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
    timeout: Optional[float] = None,
    node_limit: Optional[int] = None,
    retry: bool = True,
) -> List[PairOutcome]:
    """Full ConfigDiff report-dict outcomes for each pair, fanned out.

    ``ok`` outcomes carry :func:`repro.core.serialize.report_to_dict`
    output (the BDD handles inside a :class:`CampionReport` cannot cross
    processes, the serialized form can).  Order matches the input pairs.
    """
    return _run_outcomes(
        _diff_pair,
        _diff_at,
        pairs,
        workers,
        exhaustive_communities,
        timeout,
        node_limit,
        retry,
    )


def _unwrap(outcomes: List[PairOutcome]) -> List:
    """Strict view: results in order, raising on the first failed pair."""
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(f"pair {outcome.index} failed: {outcome.describe()}")
    return [outcome.result for outcome in outcomes]


def pairwise_counts(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
) -> List[int]:
    """Difference counts for each device pair (strict; raises on failure).

    The historical all-or-nothing interface; fault-tolerant callers
    want :func:`pairwise_count_outcomes`.
    """
    return _unwrap(
        pairwise_count_outcomes(
            pairs,
            workers=workers,
            exhaustive_communities=exhaustive_communities,
            timeout=None,
            retry=False,
        )
    )


def diff_pairs(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
) -> List[Dict]:
    """Full ConfigDiff report dictionaries per pair (strict; raises on
    failure).  Fault-tolerant callers want :func:`diff_pair_outcomes`."""
    return _unwrap(
        diff_pair_outcomes(
            pairs,
            workers=workers,
            exhaustive_communities=exhaustive_communities,
            timeout=None,
            retry=False,
        )
    )
