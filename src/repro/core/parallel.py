"""Process-parallel fan-out for fleet and multi-pair comparisons.

BDD managers are process-local by design: nodes are integer ids into a
manager's private arrays, so handles cannot cross process boundaries.
The fan-out therefore ships *configurations* out and brings *picklable
results* back — difference counts for the fleet matrix, or full report
dictionaries produced by :mod:`repro.core.serialize` for batch pairwise
comparison.  Each worker runs :func:`repro.core.config_diff.config_diff`
with its own fresh managers (``config_diff`` allocates its spaces
internally), so no shared state is needed.

Worker resolution: an explicit ``workers=N`` argument wins; ``None``
falls back to the ``CAMPION_WORKERS`` environment variable, then to 1
(serial).  ``workers=1`` never touches :mod:`multiprocessing` — callers
on constrained platforms keep the exact serial code path.

The ``fork`` start method is preferred (cheap, inherits the parsed
configs' module state); platforms without it fall back to the default
context, which is why the worker entry points are module-level
functions.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..model.device import DeviceConfig
from .config_diff import config_diff
from .serialize import report_to_dict

__all__ = [
    "WORKERS_ENV",
    "resolve_workers",
    "pairwise_counts",
    "diff_pairs",
]

WORKERS_ENV = "CAMPION_WORKERS"

_Pair = Tuple[DeviceConfig, DeviceConfig]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: argument, else ``CAMPION_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _count_pair(task: Tuple[DeviceConfig, DeviceConfig, bool]) -> int:
    device1, device2, exhaustive = task
    report = config_diff(device1, device2, exhaustive_communities=exhaustive)
    return report.total_differences()


def _diff_pair(task: Tuple[DeviceConfig, DeviceConfig, bool]) -> Dict:
    device1, device2, exhaustive = task
    report = config_diff(device1, device2, exhaustive_communities=exhaustive)
    return report_to_dict(report)


# The shared task list is shipped to each worker once (inherited for
# free under ``fork``, pickled once per worker otherwise) and tasks are
# dispatched by index, so per-task IPC is a couple of integers instead
# of two full device configurations.
_WORKER_TASKS: Optional[List] = None


def _init_worker(tasks: List) -> None:
    global _WORKER_TASKS
    _WORKER_TASKS = tasks


def _count_at(index: int) -> int:
    return _count_pair(_WORKER_TASKS[index])


def _diff_at(index: int) -> Dict:
    return _diff_pair(_WORKER_TASKS[index])


def _map(function, indexed, tasks: List, workers: int) -> List:
    """Run over ``tasks`` on a worker pool (serial when ``workers`` is 1)."""
    if workers == 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        context = multiprocessing.get_context()
    processes = min(workers, len(tasks))
    chunksize = max(1, len(tasks) // (processes * 4))
    perf.add("parallel.tasks", len(tasks))
    with perf.timer("parallel.map"):
        with context.Pool(
            processes=processes, initializer=_init_worker, initargs=(tasks,)
        ) as pool:
            return pool.map(indexed, range(len(tasks)), chunksize=chunksize)


def pairwise_counts(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
) -> List[int]:
    """Difference counts for each device pair, fanned over workers.

    Results are in input order and identical to running ``config_diff``
    serially on each pair (``config_diff`` is deterministic); only the
    wall-clock differs.
    """
    workers = resolve_workers(workers)
    tasks = [(d1, d2, exhaustive_communities) for d1, d2 in pairs]
    return _map(_count_pair, _count_at, tasks, workers)


def diff_pairs(
    pairs: Sequence[_Pair],
    workers: Optional[int] = None,
    exhaustive_communities: bool = False,
) -> List[Dict]:
    """Full ConfigDiff report dictionaries for each pair, fanned out.

    Returns :func:`repro.core.serialize.report_to_dict` output (the BDD
    handles inside a :class:`CampionReport` cannot cross processes, the
    serialized form can).  Order matches the input pairs.
    """
    workers = resolve_workers(workers)
    tasks = [(d1, d2, exhaustive_communities) for d1, d2 in pairs]
    return _map(_diff_pair, _diff_at, tasks, workers)
