"""Core value types shared across the vendor-independent model.

These mirror the vocabulary of the paper:

* :class:`Prefix` — an IPv4 prefix like ``10.9.0.0/16``.
* :class:`PrefixRange` — a prefix plus a closed range of lengths, e.g.
  ``(10.9.0.0/16, 16-32)``; this is the unit HeaderLocalize reasons in
  (§3.2) and what Cisco ``ip prefix-list ... le/ge`` and Juniper
  ``prefix-list``/``route-filter`` entries denote.
* :class:`Community` — a BGP standard community tag like ``10:10``.
* :class:`SourceSpan` — the configuration file lines a model object came
  from, which is what text localization reports.

Everything is an immutable, hashable value object so model components can
live in sets and be compared structurally (StructuralDiff relies on this).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "wildcard_to_prefix_len",
    "Prefix",
    "PrefixRange",
    "Community",
    "SourceSpan",
    "ConfigError",
]


class ConfigError(ValueError):
    """Raised for malformed configuration values or unparsable syntax."""


_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def ip_to_int(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit integer.

    Raises :class:`ConfigError` on malformed input; parsers funnel all
    address syntax through here so errors carry consistent messages.
    """
    match = _IP_RE.match(text.strip())
    if not match:
        raise ConfigError(f"malformed IPv4 address: {text!r}")
    octets = [int(part) for part in match.groups()]
    if any(octet > 255 for octet in octets):
        raise ConfigError(f"IPv4 octet out of range in {text!r}")
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad text."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


def wildcard_to_prefix_len(wildcard: int) -> Optional[int]:
    """Convert a contiguous Cisco wildcard mask to a prefix length.

    ``0.0.0.255`` -> 24; returns ``None`` for discontiguous wildcards,
    which our ACL model handles as general masked matches.
    """
    mask = (~wildcard) & 0xFFFFFFFF
    # A contiguous netmask is all-ones followed by all-zeros.
    length = 0
    seen_zero = False
    for bit in range(31, -1, -1):
        if (mask >> bit) & 1:
            if seen_zero:
                return None
            length += 1
        else:
            seen_zero = True
    return length


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix: network address plus mask length, canonicalized.

    The network address is masked on construction, so ``10.9.1.1/16``
    normalizes to ``10.9.0.0/16`` — matching how routers interpret it.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ConfigError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= 0xFFFFFFFF:
            raise ConfigError(f"prefix network out of range: {self.network}")
        masked = self.network & self.mask_int()
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` text (also accepts a bare address as /32)."""
        text = text.strip()
        if "/" in text:
            address, _, length_text = text.partition("/")
            try:
                length = int(length_text)
            except ValueError as exc:
                raise ConfigError(f"malformed prefix length in {text!r}") from exc
            return cls(ip_to_int(address), length)
        return cls(ip_to_int(text), 32)

    @classmethod
    def from_address_mask(cls, address: str, netmask: str) -> "Prefix":
        """Build from address + dotted netmask (``ip route`` syntax)."""
        mask = ip_to_int(netmask)
        length = wildcard_to_prefix_len((~mask) & 0xFFFFFFFF)
        if length is None:
            raise ConfigError(f"discontiguous netmask: {netmask!r}")
        return cls(ip_to_int(address), length)

    def mask_int(self) -> int:
        """The netmask of this prefix as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains_prefix(self, other: "Prefix") -> bool:
        """Whether ``other`` is a subnet of (or equal to) this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.mask_int()) == self.network

    def contains_address(self, address: int) -> bool:
        """Whether a single address falls inside this prefix."""
        return (address & self.mask_int()) == self.network

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


@dataclass(frozen=True, order=True)
class PrefixRange:
    """A prefix plus a closed range of acceptable prefix lengths.

    A prefix ``p`` is a member iff ``p``'s network matches :attr:`prefix`
    and ``low <= p.length <= high`` (paper §3.2).  ``(0.0.0.0/0, 0-32)``,
    the universe, is :meth:`universe`.
    """

    prefix: Prefix
    low: int
    high: int

    def __post_init__(self) -> None:
        if not self.prefix.length <= self.low <= self.high <= 32:
            raise ConfigError(
                f"invalid length range {self.low}-{self.high} for {self.prefix}"
            )

    @classmethod
    def universe(cls) -> "PrefixRange":
        """The set of all prefixes: (0.0.0.0/0, 0-32)."""
        return cls(Prefix(0, 0), 0, 32)

    @classmethod
    def exact(cls, prefix: Prefix) -> "PrefixRange":
        """The singleton range matching exactly ``prefix``."""
        return cls(prefix, prefix.length, prefix.length)

    @classmethod
    def parse(cls, text: str) -> "PrefixRange":
        """Parse the display form ``a.b.c.d/len : lo-hi``."""
        prefix_text, _, range_text = text.partition(":")
        prefix = Prefix.parse(prefix_text)
        range_text = range_text.strip()
        if not range_text:
            return cls.exact(prefix)
        low_text, _, high_text = range_text.partition("-")
        try:
            return cls(prefix, int(low_text), int(high_text or low_text))
        except ValueError as exc:
            raise ConfigError(f"malformed prefix range {text!r}") from exc

    def is_universe(self) -> bool:
        """Whether this is (0.0.0.0/0, 0-32), the set of all prefixes."""
        return self.prefix.length == 0 and self.low == 0 and self.high == 32

    def contains_prefix(self, candidate: Prefix) -> bool:
        """Membership test from §3.2 (address match + length in range)."""
        if not self.low <= candidate.length <= self.high:
            return False
        return self.prefix.contains_prefix(candidate)

    def contains_range(self, other: "PrefixRange") -> bool:
        """Whether every member of ``other`` is a member of ``self``."""
        if not (self.low <= other.low and other.high <= self.high):
            return False
        return self.prefix.contains_prefix(other.prefix)

    def intersect(self, other: "PrefixRange") -> Optional["PrefixRange"]:
        """The prefix range of common members, or ``None`` when disjoint.

        The intersection of two prefix ranges is itself a prefix range
        (the longer of the two prefixes, when one contains the other, with
        the overlapped length interval) — the closure property HeaderLocalize
        relies on when it closes the configuration's ranges under
        intersection.
        """
        if self.prefix.contains_prefix(other.prefix):
            deeper = other.prefix
        elif other.prefix.contains_prefix(self.prefix):
            deeper = self.prefix
        else:
            return None
        low = max(self.low, other.low, deeper.length)
        high = min(self.high, other.high)
        if low > high:
            return None
        return PrefixRange(deeper, low, high)

    def __str__(self) -> str:
        return f"{self.prefix} : {self.low}-{self.high}"


_COMMUNITY_RE = re.compile(r"^(\d+):(\d+)$")


@dataclass(frozen=True, order=True)
class Community:
    """A standard BGP community ``asn:value``."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= 0xFFFF or not 0 <= self.value <= 0xFFFF:
            raise ConfigError(f"community parts out of range: {self.asn}:{self.value}")

    @classmethod
    def parse(cls, text: str) -> "Community":
        """Parse the ``asn:value`` text form."""
        match = _COMMUNITY_RE.match(text.strip())
        if not match:
            raise ConfigError(f"malformed community: {text!r}")
        return cls(int(match.group(1)), int(match.group(2)))

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


@dataclass(frozen=True)
class SourceSpan:
    """Provenance of a model object: file, 1-based line range, raw text.

    Text localization (the ``Text`` row of Tables 2, 4 and 7) is exactly a
    rendering of these spans, so every parsed component carries one.
    """

    filename: str = "<config>"
    start_line: int = 0
    end_line: int = 0
    text: Tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def from_lines(
        cls, filename: str, numbered_lines: Iterable[Tuple[int, str]]
    ) -> "SourceSpan":
        """Build a span from ``(line_number, raw_text)`` pairs."""
        pairs = list(numbered_lines)
        if not pairs:
            return cls(filename=filename)
        numbers = [number for number, _ in pairs]
        return cls(
            filename=filename,
            start_line=min(numbers),
            end_line=max(numbers),
            text=tuple(raw for _, raw in pairs),
        )

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Union of two spans from the same file (text concatenated)."""
        if not self.text:
            return other
        if not other.text:
            return self
        return SourceSpan(
            filename=self.filename,
            start_line=min(self.start_line, other.start_line),
            end_line=max(self.end_line, other.end_line),
            text=self.text + other.text,
        )

    def render(self) -> str:
        """The raw configuration text, newline joined."""
        return "\n".join(self.text)

    def is_empty(self) -> bool:
        """Whether the span carries no text."""
        return not self.text
