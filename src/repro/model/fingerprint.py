"""Canonical component fingerprints — content addresses for the model.

The incremental-analysis engine (``repro.core.memo``, ``repro.cache``)
replays a memoized diff result into any device pair whose components
have the *same fingerprints*.  That is only sound if fingerprint
equality implies "SemanticDiff/StructuralDiff would compare identical
content", so the fingerprint is a SHA-256 over a canonical recursive
serialization of the model dataclasses that:

* **excludes every SourceSpan** — text provenance (file names, line
  numbers, raw lines) does not influence which differences exist, only
  how they are *presented*; dropping spans maximizes sharing across
  templated fleets whose identical stanzas sit at different line
  numbers.  (Components replayed with a non-zero difference count are
  re-localized live, so spans in reports are always the real ones.)
* **excludes identity-only device attributes** — hostname, vendor,
  filename, raw lines, and parse diagnostics name the device, they do
  not change component semantics (no diff consults ``vendor``; reports
  carry hostnames at the top level only).
* **includes names and every semantic field** — component names drive
  MatchPolicies' pairing, so they are part of the compared content;
  resolved sub-objects (prefix lists inside route-map matches, …) are
  embedded in the model and canonicalized recursively.

``FINGERPRINT_SCHEMA_VERSION`` is mixed into every digest: any change
to the canonicalization (or to the model's semantics) must bump it,
which atomically invalidates every memo table and on-disk cache entry
keyed by the old fingerprints.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from .types import SourceSpan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (device -> here)
    from .device import DeviceConfig

__all__ = [
    "FINGERPRINT_SCHEMA_VERSION",
    "ComponentFingerprints",
    "canonical_form",
    "fingerprint_value",
    "compute_fingerprints",
    "partition_by_device_fingerprint",
]

#: Bump whenever canonicalization or model semantics change; stale
#: fingerprints must never collide with current ones.
FINGERPRINT_SCHEMA_VERSION = 1


def canonical_form(value: object) -> object:
    """A stable, span-free, order-insensitive representation of ``value``.

    Dataclasses become ``(classname, (field, canon), ...)`` tuples with
    SourceSpan-valued fields dropped; enums become their class and
    member name; dicts/sets are sorted so insertion order never leaks
    into the digest.
    """
    if isinstance(value, SourceSpan):
        return ("<span>",)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = []
        for field in dataclasses.fields(value):
            attribute = getattr(value, field.name)
            if isinstance(attribute, SourceSpan):
                continue
            fields.append((field.name, canonical_form(attribute)))
        return (type(value).__name__, tuple(fields))
    if isinstance(value, enum.Enum):
        return ("<enum>", type(value).__name__, value.name)
    if isinstance(value, dict):
        return (
            "<dict>",
            tuple(
                (canonical_form(key), canonical_form(value[key]))
                for key in sorted(value, key=repr)
            ),
        )
    if isinstance(value, (set, frozenset)):
        return ("<set>", tuple(sorted((canonical_form(v) for v in value), key=repr)))
    if isinstance(value, (list, tuple)):
        return tuple(canonical_form(v) for v in value)
    return value


def fingerprint_value(value: object, kind: str = "") -> str:
    """SHA-256 hex digest of ``value``'s canonical form (+ schema/kind)."""
    material = repr((FINGERPRINT_SCHEMA_VERSION, kind, canonical_form(value)))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ComponentFingerprints:
    """Per-component content addresses for one :class:`DeviceConfig`.

    ``structural`` combines everything StructuralDiff consumes (static
    routes, interfaces — which determine connected routes and the OSPF
    interface pairing — BGP and OSPF processes, admin distances);
    ``device`` combines every component, so equal device fingerprints
    mean ConfigDiff would find zero differences between the devices.
    """

    acls: Dict[str, str]
    route_maps: Dict[str, str]
    static_routes: str
    interfaces: str
    bgp: str
    ospf: str
    admin_distances: str
    structural: str
    device: str

    def route_map(self, name: str) -> str:
        """The fingerprint of one named route map."""
        return self.route_maps[name]

    def acl(self, name: str) -> str:
        """The fingerprint of one named ACL."""
        return self.acls[name]


def partition_by_device_fingerprint(
    devices,
) -> "Dict[str, Tuple[str, ...]]":
    """Hostnames grouped by device fingerprint, each group sorted.

    The device fingerprint aggregates every component fingerprint, so
    two devices landing in the same group would produce a zero-difference
    ConfigDiff report — the soundness premise of fleet symmetry
    compression (``repro.core.fleet``).  Each group is sorted by
    hostname, making ``group[0]`` the deterministic class
    representative (lexicographically-smallest hostname tie-break —
    same convention as medoid election).
    """
    groups: Dict[str, list] = {}
    for device in devices:
        groups.setdefault(device.fingerprints.device, []).append(
            device.hostname
        )
    return {
        fingerprint: tuple(sorted(hostnames))
        for fingerprint, hostnames in groups.items()
    }


def compute_fingerprints(device: "DeviceConfig") -> ComponentFingerprints:
    """Fingerprint every component of a parsed device.

    Called once at parse time (parsers touch ``device.fingerprints``)
    and cached on the model; cost is one linear canonicalization pass,
    trivial next to a single BDD diff.
    """
    acls = {
        name: fingerprint_value(acl, kind="acl")
        for name, acl in device.acls.items()
    }
    route_maps = {
        name: fingerprint_value(route_map, kind="route_map")
        for name, route_map in device.route_maps.items()
    }
    # Static routes are a set, not a sequence: sort by canonical form
    # (not repr, which would leak span line numbers into the order).
    static_routes = fingerprint_value(
        tuple(
            sorted(
                (canonical_form(route) for route in device.static_routes),
                key=repr,
            )
        ),
        kind="static_routes",
    )
    interfaces = fingerprint_value(device.interfaces, kind="interfaces")
    bgp = fingerprint_value(device.bgp, kind="bgp")
    ospf = fingerprint_value(device.ospf, kind="ospf")
    admin_distances = fingerprint_value(
        device.admin_distances, kind="admin_distances"
    )
    structural = fingerprint_value(
        (static_routes, interfaces, bgp, ospf, admin_distances),
        kind="structural",
    )
    combined: Tuple = (
        tuple(sorted(acls.items())),
        tuple(sorted(route_maps.items())),
        structural,
    )
    return ComponentFingerprints(
        acls=acls,
        route_maps=route_maps,
        static_routes=static_routes,
        interfaces=interfaces,
        bgp=bgp,
        ospf=ospf,
        admin_distances=admin_distances,
        structural=structural,
        device=fingerprint_value(combined, kind="device"),
    )
