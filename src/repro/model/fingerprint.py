"""Canonical component fingerprints — content addresses for the model.

The incremental-analysis engine (``repro.core.memo``, ``repro.cache``)
replays a memoized diff result into any device pair whose components
have the *same fingerprints*.  That is only sound if fingerprint
equality implies "SemanticDiff/StructuralDiff would compare identical
content", so the fingerprint is a SHA-256 over a canonical recursive
serialization of the model dataclasses that:

* **excludes every SourceSpan** — text provenance (file names, line
  numbers, raw lines) does not influence which differences exist, only
  how they are *presented*; dropping spans maximizes sharing across
  templated fleets whose identical stanzas sit at different line
  numbers.  (Components replayed with a non-zero difference count are
  re-localized live, so spans in reports are always the real ones.)
* **excludes identity-only device attributes** — hostname, vendor,
  filename, raw lines, and parse diagnostics name the device, they do
  not change component semantics (no diff consults ``vendor``; reports
  carry hostnames at the top level only).
* **includes names and every semantic field** — component names drive
  MatchPolicies' pairing, so they are part of the compared content;
  resolved sub-objects (prefix lists inside route-map matches, …) are
  embedded in the model and canonicalized recursively.

``FINGERPRINT_SCHEMA_VERSION`` is mixed into every digest: any change
to the canonicalization (or to the model's semantics) must bump it,
which atomically invalidates every memo table and on-disk cache entry
keyed by the old fingerprints.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from .types import Prefix, SourceSpan, int_to_ip

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (device -> here)
    from .device import DeviceConfig

__all__ = [
    "FINGERPRINT_SCHEMA_VERSION",
    "ComponentFingerprints",
    "TemplateHole",
    "DeviceTemplate",
    "canonical_form",
    "fingerprint_value",
    "compute_fingerprints",
    "compute_template",
    "partition_by_device_fingerprint",
    "partition_by_template_fingerprint",
]

#: Bump whenever canonicalization or model semantics change; stale
#: fingerprints must never collide with current ones.
FINGERPRINT_SCHEMA_VERSION = 1


def canonical_form(value: object) -> object:
    """A stable, span-free, order-insensitive representation of ``value``.

    Dataclasses become ``(classname, (field, canon), ...)`` tuples with
    SourceSpan-valued fields dropped; enums become their class and
    member name; dicts/sets are sorted so insertion order never leaks
    into the digest.
    """
    if isinstance(value, SourceSpan):
        return ("<span>",)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = []
        for field in dataclasses.fields(value):
            attribute = getattr(value, field.name)
            if isinstance(attribute, SourceSpan):
                continue
            fields.append((field.name, canonical_form(attribute)))
        return (type(value).__name__, tuple(fields))
    if isinstance(value, enum.Enum):
        return ("<enum>", type(value).__name__, value.name)
    if isinstance(value, dict):
        return (
            "<dict>",
            tuple(
                (canonical_form(key), canonical_form(value[key]))
                for key in sorted(value, key=repr)
            ),
        )
    if isinstance(value, (set, frozenset)):
        return ("<set>", tuple(sorted((canonical_form(v) for v in value), key=repr)))
    if isinstance(value, (list, tuple)):
        return tuple(canonical_form(v) for v in value)
    return value


def fingerprint_value(value: object, kind: str = "") -> str:
    """SHA-256 hex digest of ``value``'s canonical form (+ schema/kind)."""
    material = repr((FINGERPRINT_SCHEMA_VERSION, kind, canonical_form(value)))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ComponentFingerprints:
    """Per-component content addresses for one :class:`DeviceConfig`.

    ``structural`` combines everything StructuralDiff consumes (static
    routes, interfaces — which determine connected routes and the OSPF
    interface pairing — BGP and OSPF processes, admin distances);
    ``device`` combines every component, so equal device fingerprints
    mean ConfigDiff would find zero differences between the devices.
    """

    acls: Dict[str, str]
    route_maps: Dict[str, str]
    static_routes: str
    interfaces: str
    bgp: str
    ospf: str
    admin_distances: str
    structural: str
    device: str

    def route_map(self, name: str) -> str:
        """The fingerprint of one named route map."""
        return self.route_maps[name]

    def acl(self, name: str) -> str:
        """The fingerprint of one named ACL."""
        return self.acls[name]


def partition_by_device_fingerprint(
    devices,
) -> "Dict[str, Tuple[str, ...]]":
    """Hostnames grouped by device fingerprint, each group sorted.

    The device fingerprint aggregates every component fingerprint, so
    two devices landing in the same group would produce a zero-difference
    ConfigDiff report — the soundness premise of fleet symmetry
    compression (``repro.core.fleet``).  Each group is sorted by
    hostname, making ``group[0]`` the deterministic class
    representative (lexicographically-smallest hostname tie-break —
    same convention as medoid election).
    """
    groups: Dict[str, list] = {}
    for device in devices:
        groups.setdefault(device.fingerprints.device, []).append(
            device.hostname
        )
    return {
        fingerprint: tuple(sorted(hostnames))
        for fingerprint, hostnames in groups.items()
    }


# --------------------------------------------------------------------------
# Template fingerprints (near-symmetry)
#
# The device fingerprint above demands byte-identical semantic content, so
# a templated fleet where every leaf has its own loopback/router-id/peer
# addresses degenerates to singleton classes.  The *template* fingerprint
# is a second canonicalization pass that abstracts exactly the rewritable
# literals below into numbered holes, yielding per-device
# ``(template_fingerprint, substitution)``.  Two devices with equal
# template fingerprints are equal configurations *modulo* the hole
# values; ``repro.core.near_symmetry`` proves when a pair outcome can be
# replayed across such devices.
#
# The allowlist is deliberately tiny and positional — `(classname,
# fieldname)` pairs whose values the semantic diff either never reads
# (router-ids are excluded from ``process_attributes``; ``update_source``
# is excluded from ``BgpNeighbor.attributes``) or reads only through
# within-tag equality (interface subnets via connected-route symmetric
# difference; BGP peer addresses via peer-keyed neighbor pairing).  ACL
# and route-map match semantics are NEVER holed: their literals feed the
# BDD header spaces, where a changed address changes the answer.

#: ``(classname, fieldname) -> hole kind`` — the full rewritable-literal
#: allowlist.  Kinds whose values the diff compares for within-tag
#: equality carry *atoms* (see :class:`TemplateHole`); the rest are free.
_HOLE_FIELDS: Dict[Tuple[str, str], str] = {
    ("Interface", "address"): "interface-address",
    ("BgpNeighbor", "peer_ip"): "bgp-peer",
    ("BgpNeighbor", "update_source"): "bgp-update-source",
    ("BgpProcess", "router_id"): "router-id",
    ("OspfProcess", "router_id"): "router-id",
}

#: ``update_source`` may name an interface ("Loopback0") instead of an
#: address; only IPv4 literals are rewritable, so only those are holed.
_IPV4_LITERAL = re.compile(r"^(?:\d{1,3}\.){3}\d{1,3}$")


@dataclass(frozen=True)
class TemplateHole:
    """One abstracted literal in a device template.

    ``kind`` is the allowlist entry that produced the hole; ``value`` is
    the concrete literal rendered as text (the substitution maps hole
    index -> value).  ``atoms`` are the ``(tag, literal)`` equality
    atoms the semantic diff *does* consult for this hole — empty for
    free holes (router-ids, update-sources) whose values never reach a
    comparison, ``("subnet", ...)`` for interface addresses (connected
    routes compare by subnet), ``("peer", ...)`` for BGP neighbor
    addresses (neighbors pair by peer address).  Replay of a pair
    outcome is sound only when both pairs induce the same joint
    first-occurrence equality pattern over their atom sequences.
    """

    kind: str
    value: str
    atoms: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class DeviceTemplate:
    """``(template_fingerprint, holes)`` for one device.

    Devices with equal :attr:`fingerprint` are identical configurations
    up to the hole values; :attr:`substitution` recovers the concrete
    literals in hole order.
    """

    fingerprint: str
    holes: Tuple[TemplateHole, ...]

    @property
    def substitution(self) -> Tuple[str, ...]:
        """Hole values in hole order (the device's parameter vector)."""
        return tuple(hole.value for hole in self.holes)

    @property
    def kind_sequence(self) -> Tuple[str, ...]:
        """Hole kinds in hole order (equal across a template class)."""
        return tuple(hole.kind for hole in self.holes)

    @property
    def atom_sequence(self) -> Tuple[Tuple[str, str], ...]:
        """All equality atoms, flattened in hole order."""
        return tuple(
            atom for hole in self.holes for atom in hole.atoms
        )


def _hole_for(kind: str, attribute: object) -> "TemplateHole | None":
    """The hole replacing ``attribute``, or ``None`` to keep it concrete.

    ``None``-valued fields are never holed: absence vs presence of an
    address is semantic (an unaddressed interface contributes no
    connected route), so it stays in the template.
    """
    if attribute is None:
        return None
    if kind == "interface-address":
        # Interface addresses retain their host bits (see the parsers'
        # _InterfacePrefix), but the diff only ever reads the *masked
        # subnet* (connected routes, OSPF interface pairing) — so the
        # hole value keeps the host form for substitution replay while
        # the equality atom is the subnet.  Masking in the atom is a
        # soundness requirement, not an optimization: two distinct host
        # addresses on one subnet are equal where the diff looks.
        subnet = Prefix(attribute.network, attribute.length)
        return TemplateHole(
            kind=kind,
            value=str(attribute),
            atoms=(("subnet", str(subnet)),),
        )
    if kind == "bgp-peer":
        value = int_to_ip(attribute)
        return TemplateHole(kind=kind, value=value, atoms=(("peer", value),))
    if kind == "bgp-update-source":
        if not isinstance(attribute, str) or not _IPV4_LITERAL.match(
            attribute
        ):
            return None
        return TemplateHole(kind=kind, value=attribute)
    if kind == "router-id":
        return TemplateHole(kind=kind, value=int_to_ip(attribute))
    raise AssertionError(f"unknown hole kind {kind!r}")  # pragma: no cover


def _template_walk(value: object, holes: list) -> object:
    """``canonical_form`` with allowlisted fields replaced by hole markers.

    Mirrors :func:`canonical_form` exactly — same span dropping, same
    dict/set sorting — except that an allowlisted ``(classname, field)``
    whose value qualifies becomes ``("<hole>", index, kind)``, with the
    concrete literal appended to ``holes``.  Hole numbering is therefore
    a pure function of the template structure: two devices with equal
    template fingerprints enumerate their holes in the same positions.
    """
    if isinstance(value, SourceSpan):
        return ("<span>",)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        classname = type(value).__name__
        fields = []
        for field in dataclasses.fields(value):
            attribute = getattr(value, field.name)
            if isinstance(attribute, SourceSpan):
                continue
            kind = _HOLE_FIELDS.get((classname, field.name))
            if kind is not None:
                hole = _hole_for(kind, attribute)
                if hole is not None:
                    fields.append(
                        (field.name, ("<hole>", len(holes), kind))
                    )
                    holes.append(hole)
                    continue
            fields.append((field.name, _template_walk(attribute, holes)))
        return (classname, tuple(fields))
    if isinstance(value, enum.Enum):
        return ("<enum>", type(value).__name__, value.name)
    if isinstance(value, dict):
        return (
            "<dict>",
            tuple(
                (canonical_form(key), _template_walk(value[key], holes))
                for key in sorted(value, key=repr)
            ),
        )
    if isinstance(value, (set, frozenset)):
        # Order by the hole-free canonical form so hole numbering never
        # depends on set iteration order.  (No allowlisted field lives
        # inside a set today; this keeps the walk total regardless.)
        ordered = sorted(value, key=lambda v: repr(canonical_form(v)))
        return ("<set>", tuple(_template_walk(v, holes) for v in ordered))
    if isinstance(value, (list, tuple)):
        return tuple(_template_walk(v, holes) for v in value)
    return value


def compute_template(device: "DeviceConfig") -> DeviceTemplate:
    """The device's template fingerprint and hole substitution.

    Only the structural components containing allowlisted fields are
    template-walked (interfaces, BGP, OSPF); ACLs, route maps, static
    routes, and admin distances enter by their exact component
    fingerprints — their literals are match semantics and must never be
    abstracted.
    """
    holes: list = []
    interfaces = _template_walk(device.interfaces, holes)
    bgp = _template_walk(device.bgp, holes)
    ospf = _template_walk(device.ospf, holes)
    fingerprints = device.fingerprints
    material = (
        tuple(sorted(fingerprints.acls.items())),
        tuple(sorted(fingerprints.route_maps.items())),
        fingerprints.static_routes,
        fingerprints.admin_distances,
        interfaces,
        bgp,
        ospf,
    )
    return DeviceTemplate(
        fingerprint=fingerprint_value(material, kind="template"),
        holes=tuple(holes),
    )


def partition_by_template_fingerprint(
    devices,
) -> "Dict[str, Tuple[str, ...]]":
    """Hostnames grouped by template fingerprint, each group sorted.

    The near-symmetry analogue of
    :func:`partition_by_device_fingerprint`: devices in one group are
    identical configurations modulo their hole substitutions.  Groups
    are sorted by hostname, so ``group[0]`` is the deterministic class
    representative.
    """
    groups: Dict[str, list] = {}
    for device in devices:
        groups.setdefault(device.template.fingerprint, []).append(
            device.hostname
        )
    return {
        fingerprint: tuple(sorted(hostnames))
        for fingerprint, hostnames in groups.items()
    }


def compute_fingerprints(device: "DeviceConfig") -> ComponentFingerprints:
    """Fingerprint every component of a parsed device.

    Called once at parse time (parsers touch ``device.fingerprints``)
    and cached on the model; cost is one linear canonicalization pass,
    trivial next to a single BDD diff.
    """
    acls = {
        name: fingerprint_value(acl, kind="acl")
        for name, acl in device.acls.items()
    }
    route_maps = {
        name: fingerprint_value(route_map, kind="route_map")
        for name, route_map in device.route_maps.items()
    }
    # Static routes are a set, not a sequence: sort by canonical form
    # (not repr, which would leak span line numbers into the order).
    static_routes = fingerprint_value(
        tuple(
            sorted(
                (canonical_form(route) for route in device.static_routes),
                key=repr,
            )
        ),
        kind="static_routes",
    )
    interfaces = fingerprint_value(device.interfaces, kind="interfaces")
    bgp = fingerprint_value(device.bgp, kind="bgp")
    ospf = fingerprint_value(device.ospf, kind="ospf")
    admin_distances = fingerprint_value(
        device.admin_distances, kind="admin_distances"
    )
    structural = fingerprint_value(
        (static_routes, interfaces, bgp, ospf, admin_distances),
        kind="structural",
    )
    combined: Tuple = (
        tuple(sorted(acls.items())),
        tuple(sorted(route_maps.items())),
        structural,
    )
    return ComponentFingerprints(
        acls=acls,
        route_maps=route_maps,
        static_routes=static_routes,
        interfaces=interfaces,
        bgp=bgp,
        ospf=ospf,
        admin_distances=admin_distances,
        structural=structural,
        device=fingerprint_value(combined, kind="device"),
    )
