"""Vendor-independent OSPF configuration.

All OSPF attributes (costs, areas, passive status, timers) are compared
with StructuralDiff (Table 1): two OSPF link configurations are
behaviorally interchangeable in every surrounding configuration only when
identical, so structural equality is exactly modular behavioral
equivalence (§3.3).  Redistribution *policies* are route maps and go
through SemanticDiff instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .types import SourceSpan

__all__ = ["OspfInterfaceSettings", "OspfProcess"]


@dataclass(frozen=True)
class OspfInterfaceSettings:
    """OSPF attributes of one participating interface."""

    interface: str
    area: int = 0
    cost: Optional[int] = None
    passive: bool = False
    hello_interval: int = 10
    dead_interval: int = 40
    network_type: str = "broadcast"
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def key(self) -> str:
        """Interfaces are matched by (possibly normalized) name; the
        MatchPolicies heuristics may substitute subnet-based keys when
        backup routers use different interface naming (§4)."""
        return self.interface

    def attributes(self) -> Dict[str, object]:
        """Structurally-compared attributes, by display name."""
        return {
            "area": self.area,
            "cost": self.cost,
            "passive": self.passive,
            "hello-interval": self.hello_interval,
            "dead-interval": self.dead_interval,
            "network-type": self.network_type,
        }


@dataclass(frozen=True)
class OspfProcess:
    """One router's OSPF process."""

    process_id: str = "1"
    router_id: Optional[int] = None
    interfaces: Tuple[OspfInterfaceSettings, ...] = ()
    redistributions: Tuple["OspfRedistribution", ...] = ()
    reference_bandwidth: int = 100_000_000
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def interface_map(self) -> Dict[str, OspfInterfaceSettings]:
        """Interface settings indexed by interface name."""
        return {settings.interface: settings for settings in self.interfaces}

    def process_attributes(self) -> Dict[str, object]:
        """Process-level structurally-compared attributes."""
        return {"reference-bandwidth": self.reference_bandwidth}


@dataclass(frozen=True)
class OspfRedistribution:
    """Redistribution into OSPF, optionally filtered by a route map."""

    from_protocol: str
    route_map: Optional[str] = None
    metric: Optional[int] = None
    metric_type: int = 2
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def key(self) -> str:
        """Redistributions are matched across routers by source protocol."""
        return self.from_protocol

    def attributes(self) -> Dict[str, object]:
        """Structurally-compared attributes, by display name."""
        return {
            "metric": self.metric,
            "metric-type": self.metric_type,
            "has-route-map": self.route_map is not None,
        }
