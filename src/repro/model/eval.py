"""Concrete evaluation of routing policy on individual routes.

This is the executable ground-truth semantics of :class:`RouteMap`:
first-match over clauses, conjunctive conditions, set-actions applied on
acceptance, explicit fall-through.  It serves two roles:

* the **transfer function** of the SRP simulator (``repro.srp``), where
  BGP edges apply export/import policies to concrete routes, and
* the **differential-testing oracle** for SemanticDiff: a difference
  reported symbolically must reproduce on a decoded concrete witness,
  and policies reported equivalent must agree on random concrete routes
  (see ``tests/core/test_semantic_diff.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

from .routemap import (
    Action,
    MatchAsPath,
    MatchCommunities,
    MatchPrefixList,
    MatchProtocol,
    MatchTag,
    RouteMap,
    RouteMapClause,
    SetAsPathPrepend,
    SetCommunities,
    SetLocalPref,
    SetMed,
    SetNextHop,
    SetTag,
)
from .types import Community, Prefix

__all__ = ["ConcreteRoute", "PolicyResult", "evaluate_clause_match", "evaluate_route_map"]


@dataclass(frozen=True)
class ConcreteRoute:
    """One concrete route advertisement / RIB entry."""

    prefix: Prefix
    communities: FrozenSet[Community] = frozenset()
    as_path: Tuple[int, ...] = ()
    local_pref: int = 100
    med: int = 0
    tag: int = 0
    protocol: str = "bgp"
    next_hop: Optional[int] = None
    admin_distance: int = 20

    def with_updates(self, **kwargs) -> "ConcreteRoute":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of running a route map on one route."""

    accepted: bool
    route: Optional[ConcreteRoute]  # transformed route when accepted
    clause: Optional[RouteMapClause]  # which clause decided (None = default)

    def describe(self) -> str:
        """One-line outcome summary, naming the deciding clause."""
        where = self.clause.name if self.clause is not None else "default"
        return f"{'accept' if self.accepted else 'reject'} at {where}"


def evaluate_clause_match(clause: RouteMapClause, route: ConcreteRoute) -> bool:
    """Whether all of a clause's conditions hold for ``route``."""
    for condition in clause.matches:
        if isinstance(condition, MatchPrefixList):
            if not condition.prefix_list.permits(route.prefix):
                return False
        elif isinstance(condition, MatchCommunities):
            if not condition.community_list.matches(route.communities):
                return False
        elif isinstance(condition, MatchAsPath):
            if not condition.as_path_list.permits(route.as_path):
                return False
        elif isinstance(condition, MatchTag):
            if route.tag != condition.tag:
                return False
        elif isinstance(condition, MatchProtocol):
            if route.protocol != condition.protocol:
                return False
        else:
            raise TypeError(f"unsupported match condition {condition!r}")
    return True


def _apply_sets(clause: RouteMapClause, route: ConcreteRoute) -> ConcreteRoute:
    for action in clause.sets:
        if isinstance(action, SetLocalPref):
            route = route.with_updates(local_pref=action.value)
        elif isinstance(action, SetMed):
            route = route.with_updates(med=action.value)
        elif isinstance(action, SetCommunities):
            if action.additive:
                route = route.with_updates(
                    communities=route.communities | action.communities
                )
            else:
                route = route.with_updates(communities=frozenset(action.communities))
        elif isinstance(action, SetNextHop):
            route = route.with_updates(next_hop=action.ip)
        elif isinstance(action, SetAsPathPrepend):
            route = route.with_updates(as_path=action.asns + route.as_path)
        elif isinstance(action, SetTag):
            route = route.with_updates(tag=action.tag)
        else:
            raise TypeError(f"unsupported set action {action!r}")
    return route


def evaluate_route_map(route_map: RouteMap, route: ConcreteRoute) -> PolicyResult:
    """First-match evaluation of a route map on a concrete route."""
    for clause in route_map.clauses:
        if evaluate_clause_match(clause, route):
            if clause.action is Action.PERMIT:
                return PolicyResult(True, _apply_sets(clause, route), clause)
            return PolicyResult(False, None, clause)
    if route_map.default_action is Action.PERMIT:
        return PolicyResult(True, route, None)
    return PolicyResult(False, None, None)
