"""Router interfaces and their attached state (addresses, ACLs)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .static_route import ConnectedRoute
from .types import Prefix, SourceSpan

__all__ = ["Interface"]


@dataclass(frozen=True)
class Interface:
    """One router interface.

    The connected subnet (when addressed) contributes a connected route,
    compared structurally; inbound/outbound ACL references resolve to ACLs
    compared semantically.
    """

    name: str
    address: Optional[Prefix] = None  # interface IP with its subnet length
    description: str = ""
    shutdown: bool = False
    acl_in: Optional[str] = None
    acl_out: Optional[str] = None
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def connected_route(self) -> Optional[ConnectedRoute]:
        """The connected route this interface contributes, if up/addressed."""
        if self.address is None or self.shutdown:
            return None
        subnet = Prefix(self.address.network, self.address.length)
        return ConnectedRoute(prefix=subnet, interface=self.name, source=self.source)

    def subnet(self) -> Optional[Prefix]:
        """The attached subnet, used by interface-matching heuristics."""
        if self.address is None:
            return None
        return Prefix(self.address.network, self.address.length)
