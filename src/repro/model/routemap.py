"""Vendor-independent model of routing policy: prefix lists, community
lists, AS-path lists, and route maps.

Both Cisco route-maps and Juniper policy-statements normalize to a
:class:`RouteMap`: an ordered list of :class:`RouteMapClause` objects, each
with match conditions, set actions, and a terminal disposition, plus an
explicit fall-through action for advertisements matching no clause (the
paper's university study found the two vendors' fall-throughs differed —
§5.2).

Community matching semantics
----------------------------
The paper's headline bug (Figure 1 / Table 2(b)) hinges on the difference
between

* Cisco: a ``community-list`` with several single-community entries
  matches a route carrying *any* of them, while
* Juniper: a ``community`` definition with several members matches only
  routes carrying *all* of them.

We model both with one normal form: a community-list entry is a
*conjunction* (frozenset) of communities, and a list of entries is a
*disjunction*.  Cisco's example becomes ``[{10:10}, {10:11}]``; Juniper's
becomes ``[{10:10, 10:11}]``.  Regex-style community matches (used by the
university border routers, Exports 3-4) are carried as literal regex
strings and compared via their accepted-community sets over the comparison
universe.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

from .types import Community, ConfigError, Prefix, PrefixRange, SourceSpan

__all__ = [
    "Action",
    "PrefixListEntry",
    "PrefixList",
    "CommunityListEntry",
    "CommunityList",
    "community_regex_matches",
    "AsPathListEntry",
    "AsPathList",
    "MatchPrefixList",
    "MatchCommunities",
    "MatchAsPath",
    "MatchTag",
    "MatchProtocol",
    "MatchCondition",
    "SetLocalPref",
    "SetMed",
    "SetCommunities",
    "SetNextHop",
    "SetAsPathPrepend",
    "SetTag",
    "SetAction",
    "RouteMapClause",
    "RouteMap",
]


class Action(enum.Enum):
    """Terminal disposition of a policy clause (or a whole policy)."""

    PERMIT = "permit"
    DENY = "deny"

    def __str__(self) -> str:
        return self.value


# ---------------------------------------------------------------------------
# Named filter lists
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrefixListEntry:
    """One line of a prefix list: permit/deny a prefix range."""

    action: Action
    range: PrefixRange
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def matches(self, prefix: Prefix) -> bool:
        """Whether the entry's range contains ``prefix``."""
        return self.range.contains_prefix(prefix)


@dataclass(frozen=True)
class PrefixList:
    """An ordered prefix list with first-match semantics, default deny."""

    name: str
    entries: Tuple[PrefixListEntry, ...] = ()

    def permits(self, prefix: Prefix) -> bool:
        """Concrete first-match evaluation (testing oracle)."""
        for entry in self.entries:
            if entry.matches(prefix):
                return entry.action is Action.PERMIT
        return False

    def ranges(self) -> List[PrefixRange]:
        """All prefix ranges mentioned, for HeaderLocalize's vocabulary."""
        return [entry.range for entry in self.entries]


@dataclass(frozen=True)
class CommunityListEntry:
    """One disjunct of a community match.

    Either a conjunction of literal communities (``communities``) or a
    regular expression over the ``asn:value`` rendering (``regex``).
    Exactly one of the two is populated.
    """

    action: Action
    communities: FrozenSet[Community] = frozenset()
    regex: Optional[str] = None
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def __post_init__(self) -> None:
        if bool(self.communities) == (self.regex is not None):
            raise ConfigError(
                "community list entry must have exactly one of members/regex"
            )

    def matches(self, carried: FrozenSet[Community]) -> bool:
        """Whether a route carrying ``carried`` satisfies this entry."""
        if self.regex is not None:
            return any(community_regex_matches(self.regex, c) for c in carried)
        return self.communities <= carried


def community_regex_matches(regex: str, community: Community) -> bool:
    """IOS-style community regex match against one community's text form.

    IOS regexes are unanchored (``re.search`` semantics); ``_`` matches a
    delimiter (start, end, or colon), following Cisco's convention.
    """
    translated = regex.replace("_", r"(?:^|$|:)")
    try:
        return re.search(translated, str(community)) is not None
    except re.error as exc:
        raise ConfigError(f"bad community regex {regex!r}: {exc}") from exc


@dataclass(frozen=True)
class CommunityList:
    """A named disjunction of community-match entries."""

    name: str
    entries: Tuple[CommunityListEntry, ...] = ()

    def matches(self, carried: FrozenSet[Community]) -> bool:
        """First-match evaluation: True iff a PERMIT entry fires first."""
        for entry in self.entries:
            if entry.matches(carried):
                return entry.action is Action.PERMIT
        return False

    def mentioned_communities(self) -> FrozenSet[Community]:
        """All literal communities appearing in entries (regexes excluded)."""
        result: set = set()
        for entry in self.entries:
            result.update(entry.communities)
        return frozenset(result)


@dataclass(frozen=True)
class AsPathListEntry:
    """One line of an as-path access list."""

    action: Action
    regex: str
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def matches(self, as_path: Sequence[int]) -> bool:
        """IOS-style regex match over the rendered AS path."""
        rendered = " ".join(str(asn) for asn in as_path)
        translated = self.regex.replace("_", r"(?:^|$| )")
        try:
            return re.search(translated, rendered) is not None
        except re.error as exc:
            raise ConfigError(f"bad as-path regex {self.regex!r}: {exc}") from exc


@dataclass(frozen=True)
class AsPathList:
    """A named ordered as-path access list, default deny."""

    name: str
    entries: Tuple[AsPathListEntry, ...] = ()

    def permits(self, as_path: Sequence[int]) -> bool:
        """First-match evaluation over the entries (default deny)."""
        for entry in self.entries:
            if entry.matches(as_path):
                return entry.action is Action.PERMIT
        return False


# ---------------------------------------------------------------------------
# Match conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatchPrefixList:
    """``match ip address prefix-list NAME`` / ``from prefix-list NAME``."""

    prefix_list: PrefixList
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)


@dataclass(frozen=True)
class MatchCommunities:
    """``match community NAME`` / ``from community NAME``."""

    community_list: CommunityList
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)


@dataclass(frozen=True)
class MatchAsPath:
    """``match as-path N`` / ``from as-path NAME``."""

    as_path_list: AsPathList
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)


@dataclass(frozen=True)
class MatchTag:
    """``match tag N`` — used by redistribution policies."""

    tag: int
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)


@dataclass(frozen=True)
class MatchProtocol:
    """``from protocol static|ospf|bgp|connected`` (redistribution)."""

    protocol: str
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)


MatchCondition = Union[MatchPrefixList, MatchCommunities, MatchAsPath, MatchTag, MatchProtocol]


# ---------------------------------------------------------------------------
# Set actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SetLocalPref:
    value: int
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def describe(self) -> str:
        """Canonical rendering for the Action row."""
        return f"SET LOCAL PREF {self.value}"


@dataclass(frozen=True)
class SetMed:
    value: int
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def describe(self) -> str:
        """Canonical rendering for the Action row."""
        return f"SET MED {self.value}"


@dataclass(frozen=True)
class SetCommunities:
    """Set or add communities; ``additive`` mirrors IOS's keyword."""

    communities: FrozenSet[Community]
    additive: bool = False
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def describe(self) -> str:
        """Canonical rendering for the Action row."""
        rendered = " ".join(sorted(str(c) for c in self.communities))
        mode = "ADD" if self.additive else "SET"
        return f"{mode} COMMUNITY {rendered}"


@dataclass(frozen=True)
class SetNextHop:
    ip: int
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def describe(self) -> str:
        """Canonical rendering for the Action row."""
        from .types import int_to_ip

        return f"SET NEXT HOP {int_to_ip(self.ip)}"


@dataclass(frozen=True)
class SetAsPathPrepend:
    asns: Tuple[int, ...]
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def describe(self) -> str:
        """Canonical rendering for the Action row."""
        return "PREPEND AS PATH " + " ".join(str(a) for a in self.asns)


@dataclass(frozen=True)
class SetTag:
    tag: int
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def describe(self) -> str:
        """Canonical rendering for the Action row."""
        return f"SET TAG {self.tag}"


SetAction = Union[SetLocalPref, SetMed, SetCommunities, SetNextHop, SetAsPathPrepend, SetTag]


# ---------------------------------------------------------------------------
# Route maps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RouteMapClause:
    """One route-map stanza / policy-statement term.

    A route advertisement matches the clause when *all* conditions hold
    (conditions on different attributes conjoin; IOS conjoins distinct
    ``match`` types within one stanza, JunOS conjoins ``from`` conditions
    in one term).  On match, ``sets`` apply and ``action`` decides.
    """

    name: str
    action: Action
    matches: Tuple[MatchCondition, ...] = ()
    sets: Tuple[SetAction, ...] = ()
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def action_summary(self) -> str:
        """Human-readable disposition, e.g. ``SET LOCAL PREF 30 / ACCEPT``."""
        parts = [s.describe() for s in self.sets] if self.action is Action.PERMIT else []
        parts.append("ACCEPT" if self.action is Action.PERMIT else "REJECT")
        return "\n".join(parts)


@dataclass(frozen=True)
class RouteMap:
    """An ordered routing policy with explicit fall-through action."""

    name: str
    clauses: Tuple[RouteMapClause, ...] = ()
    default_action: Action = Action.DENY
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def prefix_ranges(self) -> List[PrefixRange]:
        """Every prefix range mentioned anywhere in the policy.

        This is HeaderLocalize's vocabulary ``R`` (§3.2): the constants in
        terms of which affected prefix sets are expressed.
        """
        ranges: List[PrefixRange] = []
        for clause in self.clauses:
            for condition in clause.matches:
                if isinstance(condition, MatchPrefixList):
                    ranges.extend(condition.prefix_list.ranges())
        return ranges

    def mentioned_communities(self) -> FrozenSet[Community]:
        """All literal communities matched or set anywhere in the policy."""
        result: set = set()
        for clause in self.clauses:
            for condition in clause.matches:
                if isinstance(condition, MatchCommunities):
                    result.update(condition.community_list.mentioned_communities())
            for action in clause.sets:
                if isinstance(action, SetCommunities):
                    result.update(action.communities)
        return frozenset(result)

    def community_regexes(self) -> List[str]:
        """All community regexes used in match conditions."""
        regexes: List[str] = []
        for clause in self.clauses:
            for condition in clause.matches:
                if isinstance(condition, MatchCommunities):
                    for entry in condition.community_list.entries:
                        if entry.regex is not None:
                            regexes.append(entry.regex)
        return regexes
