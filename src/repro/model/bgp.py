"""Vendor-independent BGP configuration.

Route maps attached to neighbors are compared with SemanticDiff; the
remaining per-neighbor and per-process attributes here (remote AS, route
reflector client status, send-community, next-hop-self, ...) are the "Other
BGP Properties" row of Table 1 and are compared with StructuralDiff.  The
university study's send-community discrepancy (§5.2) and the cloud study's
route-reflector local-preference bug (§5.1 Scenario 2) both live in this
component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .types import SourceSpan, int_to_ip

__all__ = ["BgpNeighbor", "Redistribution", "BgpProcess"]


@dataclass(frozen=True)
class BgpNeighbor:
    """Configuration of one BGP session, keyed by peer address."""

    peer_ip: int
    remote_as: int
    description: str = ""
    import_policy: Optional[str] = None
    export_policy: Optional[str] = None
    route_reflector_client: bool = False
    send_community: bool = False
    next_hop_self: bool = False
    update_source: Optional[str] = None
    ebgp_multihop: bool = False
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def key(self) -> int:
        """Neighbors are matched across routers by peer address."""
        return self.peer_ip

    def attributes(self) -> Dict[str, object]:
        """Structurally-compared attributes, by display name.

        ``import_policy``/``export_policy`` name route maps that
        SemanticDiff compares separately, so only *presence* (applied or
        not) is compared structurally, not the policy names, which
        legitimately differ across vendors.
        """
        return {
            "remote-as": self.remote_as,
            "route-reflector-client": self.route_reflector_client,
            "send-community": self.send_community,
            "next-hop-self": self.next_hop_self,
            "ebgp-multihop": self.ebgp_multihop,
            "has-import-policy": self.import_policy is not None,
            "has-export-policy": self.export_policy is not None,
        }

    def describe(self) -> str:
        """One-line summary for reports."""
        return f"neighbor {int_to_ip(self.peer_ip)} remote-as {self.remote_as}"


@dataclass(frozen=True)
class Redistribution:
    """Route redistribution into a protocol, optionally via a route map.

    The route map itself (when present) goes through SemanticDiff — the
    "Route Maps (BGP, Route Redistribution)" row of Table 1.
    """

    from_protocol: str
    route_map: Optional[str] = None
    metric: Optional[int] = None
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def key(self) -> str:
        """Redistributions are matched across routers by source protocol."""
        return self.from_protocol

    def attributes(self) -> Dict[str, object]:
        """Structurally-compared attributes, by display name."""
        return {
            "metric": self.metric,
            "has-route-map": self.route_map is not None,
        }


@dataclass(frozen=True)
class BgpProcess:
    """One router's BGP process."""

    asn: int
    router_id: Optional[int] = None
    neighbors: Tuple[BgpNeighbor, ...] = ()
    redistributions: Tuple[Redistribution, ...] = ()
    default_local_pref: int = 100
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def neighbor_map(self) -> Dict[int, BgpNeighbor]:
        """Neighbors indexed by peer address."""
        return {neighbor.peer_ip: neighbor for neighbor in self.neighbors}

    def process_attributes(self) -> Dict[str, object]:
        """Process-level structurally-compared attributes."""
        return {
            "asn": self.asn,
            "default-local-preference": self.default_local_pref,
        }
