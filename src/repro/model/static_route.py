"""Static and connected routes.

Campion compares these with StructuralDiff (§2.2, §3.3): a static route is
a tuple (prefix, next hop, administrative distance, tag), and the
difference between two routers is simply the symmetric set difference of
their tuples plus attribute mismatches on shared prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .types import Prefix, SourceSpan, int_to_ip

__all__ = ["StaticRoute", "ConnectedRoute"]


@dataclass(frozen=True, order=True)
class StaticRoute:
    """One static route.  ``next_hop`` may be None for interface routes."""

    prefix: Prefix
    next_hop: Optional[int] = None
    interface: Optional[str] = None
    admin_distance: int = 1
    tag: Optional[int] = None
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def key(self) -> Prefix:
        """Routes are matched across routers by destination prefix."""
        return self.prefix

    def attributes(self) -> tuple:
        """The comparable attribute tuple (everything but provenance)."""
        return (self.prefix, self.next_hop, self.interface, self.admin_distance, self.tag)

    def describe(self) -> str:
        """One-line summary for reports (Table 4's value cell)."""
        parts = [f"prefix {self.prefix}"]
        if self.next_hop is not None:
            parts.append(f"next-hop {int_to_ip(self.next_hop)}")
        if self.interface is not None:
            parts.append(f"interface {self.interface}")
        parts.append(f"distance {self.admin_distance}")
        if self.tag is not None:
            parts.append(f"tag {self.tag}")
        return " ".join(parts)


@dataclass(frozen=True, order=True)
class ConnectedRoute:
    """A subnet directly attached via an interface."""

    prefix: Prefix
    interface: str
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def key(self) -> Prefix:
        """Connected routes are matched across routers by subnet."""
        return self.prefix
