"""The vendor-independent device configuration — the unit Campion compares.

:class:`DeviceConfig` is this reproduction's analogue of Batfish's
vendor-independent representation: everything the paper's Figure 4 marks
as *configurable* (brown nodes), with provenance back to the original
text.  Parsers for each dialect produce this; the Campion core consumes
it without knowing which vendor it came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - fingerprint imports this module
    from .fingerprint import ComponentFingerprints, DeviceTemplate

from ..diagnostics import Diagnostic, Severity
from .acl import Acl
from .bgp import BgpProcess
from .interface import Interface
from .ospf import OspfProcess
from .routemap import AsPathList, CommunityList, PrefixList, RouteMap
from .static_route import ConnectedRoute, StaticRoute
from .types import SourceSpan

__all__ = ["DeviceConfig", "DEFAULT_ADMIN_DISTANCES"]

# IOS defaults; Juniper's differ (e.g. OSPF internal 10) and the parser
# fills vendor defaults in so that StructuralDiff sees the *effective*
# distances, not the textual ones.
DEFAULT_ADMIN_DISTANCES: Dict[str, int] = {
    "connected": 0,
    "static": 1,
    "ebgp": 20,
    "ospf": 110,
    "ibgp": 200,
}


@dataclass
class DeviceConfig:
    """Everything Campion models about one router."""

    hostname: str
    vendor: str = "unknown"
    filename: str = "<config>"
    interfaces: Dict[str, Interface] = field(default_factory=dict)
    static_routes: List[StaticRoute] = field(default_factory=list)
    prefix_lists: Dict[str, PrefixList] = field(default_factory=dict)
    community_lists: Dict[str, CommunityList] = field(default_factory=dict)
    as_path_lists: Dict[str, AsPathList] = field(default_factory=dict)
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)
    acls: Dict[str, Acl] = field(default_factory=dict)
    bgp: Optional[BgpProcess] = None
    ospf: Optional[OspfProcess] = None
    admin_distances: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_ADMIN_DISTANCES)
    )
    raw_lines: Tuple[str, ...] = ()
    # Parse diagnostics (lenient mode records-and-skips; see
    # repro.diagnostics).  Error severity means a stanza we model could
    # not be parsed, so comparisons over this device have reduced
    # coverage and reports must say so.
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def fingerprints(self) -> "ComponentFingerprints":
        """Content-addressed component fingerprints, computed lazily once.

        Parsers touch this property so every parsed device carries its
        fingerprints; the cached value pickles with the device, so
        workers and the on-disk artifact cache never recompute it.
        """
        cached = self.__dict__.get("_fingerprints")
        if cached is None:
            from .fingerprint import compute_fingerprints

            cached = compute_fingerprints(self)
            self.__dict__["_fingerprints"] = cached
        return cached

    @property
    def template(self) -> "DeviceTemplate":
        """Template fingerprint + hole substitution, computed lazily once.

        The near-symmetry layer (``repro.core.near_symmetry``) touches
        this; like :attr:`fingerprints`, the cached value pickles with
        the device so workers never recompute it.
        """
        cached = self.__dict__.get("_template")
        if cached is None:
            from .fingerprint import compute_template

            cached = compute_template(self)
            self.__dict__["_template"] = cached
        return cached

    def parse_errors(self) -> List[Diagnostic]:
        """Error-severity parse diagnostics (skipped modeled stanzas)."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def parse_degraded(self) -> bool:
        """Whether lenient parsing skipped stanzas Campion models."""
        return bool(self.parse_errors())

    def connected_routes(self) -> List[ConnectedRoute]:
        """Connected routes contributed by addressed, enabled interfaces."""
        routes = []
        for interface in self.interfaces.values():
            route = interface.connected_route()
            if route is not None:
                routes.append(route)
        return sorted(routes)

    def line_count(self) -> int:
        """Number of raw configuration lines."""
        return len(self.raw_lines)

    def span_for(self, start: int, end: int) -> SourceSpan:
        """A SourceSpan over 1-based raw line numbers [start, end]."""
        lines = tuple(
            self.raw_lines[number - 1]
            for number in range(start, end + 1)
            if 1 <= number <= len(self.raw_lines)
        )
        return SourceSpan(self.filename, start, end, lines)
