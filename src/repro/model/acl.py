"""Vendor-independent model of packet-filtering ACLs.

Cisco extended access-lists and Juniper firewall filters are both
normalized to an ordered list of :class:`AclLine` objects with first-match
semantics and an explicit default action.  Each line keeps its
:class:`~repro.model.types.SourceSpan` so SemanticDiff can localize a
difference back to the original text (Table 7).

Matching model
--------------
A line matches a packet when *all* of its populated conditions hold:

* ``src`` / ``dst`` — address-plus-wildcard matches (the general Cisco
  form; contiguous wildcards are just prefixes),
* ``protocol`` — IP protocol number, ``None`` meaning any,
* ``src_ports`` / ``dst_ports`` — lists of inclusive port ranges,
  empty meaning any (only meaningful for TCP/UDP),
* ``icmp_type`` — ICMP type, ``None`` meaning any.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .types import ConfigError, Prefix, SourceSpan, int_to_ip

__all__ = [
    "AclAction",
    "IpWildcard",
    "PortRange",
    "AclLine",
    "Acl",
    "IP_PROTOCOL_NUMBERS",
    "IP_PROTOCOL_NAMES",
]

# The protocol keywords both dialects share, mapped to IANA numbers.
IP_PROTOCOL_NUMBERS = {
    "icmp": 1,
    "igmp": 2,
    "tcp": 6,
    "udp": 17,
    "gre": 47,
    "esp": 50,
    "ahp": 51,
    "ospf": 89,
    "pim": 103,
}
IP_PROTOCOL_NAMES = {number: name for name, number in IP_PROTOCOL_NUMBERS.items()}


class AclAction(enum.Enum):
    """Terminal disposition of a filter line."""

    PERMIT = "permit"
    DENY = "deny"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class IpWildcard:
    """Cisco-style address match: ``address`` with don't-care ``wildcard`` bits.

    A wildcard bit of 1 means "ignore this bit".  Prefix matches are the
    special case of contiguous wildcards; Juniper source/destination
    prefixes are converted to this form on parse.
    """

    address: int
    wildcard: int

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 0xFFFFFFFF or not 0 <= self.wildcard <= 0xFFFFFFFF:
            raise ConfigError("IpWildcard parts out of 32-bit range")
        # Canonicalize: zero out don't-care bits of the address.
        canonical = self.address & ~self.wildcard & 0xFFFFFFFF
        if canonical != self.address:
            object.__setattr__(self, "address", canonical)

    @classmethod
    def any(cls) -> "IpWildcard":
        """The match-everything wildcard."""
        return cls(0, 0xFFFFFFFF)

    @classmethod
    def host(cls, address: int) -> "IpWildcard":
        """A single-address (host) match."""
        return cls(address, 0)

    @classmethod
    def from_prefix(cls, prefix: Prefix) -> "IpWildcard":
        """The wildcard matching exactly one prefix's addresses."""
        return cls(prefix.network, (~prefix.mask_int()) & 0xFFFFFFFF)

    def is_any(self) -> bool:
        """Whether every address matches."""
        return self.wildcard == 0xFFFFFFFF

    def matches(self, address: int) -> bool:
        """Concrete membership test, used by tests as the ground truth."""
        care = (~self.wildcard) & 0xFFFFFFFF
        return (address & care) == self.address

    def as_prefix(self) -> Optional[Prefix]:
        """This wildcard as a Prefix if contiguous, else ``None``."""
        from .types import wildcard_to_prefix_len

        length = wildcard_to_prefix_len(self.wildcard)
        if length is None:
            return None
        return Prefix(self.address, length)

    def __str__(self) -> str:
        prefix = self.as_prefix()
        if prefix is not None:
            return str(prefix)
        return f"{int_to_ip(self.address)} wildcard {int_to_ip(self.wildcard)}"


@dataclass(frozen=True, order=True)
class PortRange:
    """An inclusive range of layer-4 ports."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high <= 0xFFFF:
            raise ConfigError(f"invalid port range {self.low}-{self.high}")

    @classmethod
    def single(cls, port: int) -> "PortRange":
        """The one-port range."""
        return cls(port, port)

    def contains(self, port: int) -> bool:
        """Whether ``port`` falls inside the range."""
        return self.low <= port <= self.high

    def __str__(self) -> str:
        return str(self.low) if self.low == self.high else f"{self.low}-{self.high}"


@dataclass(frozen=True)
class AclLine:
    """One first-match filter rule."""

    action: AclAction
    src: IpWildcard = field(default_factory=IpWildcard.any)
    dst: IpWildcard = field(default_factory=IpWildcard.any)
    protocol: Optional[int] = None
    src_ports: Tuple[PortRange, ...] = ()
    dst_ports: Tuple[PortRange, ...] = ()
    icmp_type: Optional[int] = None
    name: str = ""
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def matches_concrete(
        self,
        src_ip: int,
        dst_ip: int,
        protocol: int,
        src_port: int = 0,
        dst_port: int = 0,
        icmp_type: int = 0,
    ) -> bool:
        """Concrete packet match — the oracle the BDD encoder is tested
        against (see ``tests/encoding/test_acl_encoder.py``)."""
        if not self.src.matches(src_ip) or not self.dst.matches(dst_ip):
            return False
        if self.protocol is not None and protocol != self.protocol:
            return False
        if self.src_ports and not any(r.contains(src_port) for r in self.src_ports):
            return False
        if self.dst_ports and not any(r.contains(dst_port) for r in self.dst_ports):
            return False
        if self.icmp_type is not None and icmp_type != self.icmp_type:
            return False
        return True

    def describe(self) -> str:
        """One-line human summary used in reports when raw text is absent."""
        parts = [str(self.action)]
        parts.append(IP_PROTOCOL_NAMES.get(self.protocol, str(self.protocol)) if self.protocol is not None else "ip")
        parts.append(f"src {self.src}")
        if self.src_ports:
            parts.append("sport " + ",".join(str(r) for r in self.src_ports))
        parts.append(f"dst {self.dst}")
        if self.dst_ports:
            parts.append("dport " + ",".join(str(r) for r in self.dst_ports))
        if self.icmp_type is not None:
            parts.append(f"icmp-type {self.icmp_type}")
        return " ".join(parts)


@dataclass(frozen=True)
class Acl:
    """An ordered packet filter with first-match semantics."""

    name: str
    lines: Tuple[AclLine, ...] = ()
    default_action: AclAction = AclAction.DENY
    source: SourceSpan = field(default_factory=SourceSpan, compare=False)

    def evaluate_concrete(
        self,
        src_ip: int,
        dst_ip: int,
        protocol: int,
        src_port: int = 0,
        dst_port: int = 0,
        icmp_type: int = 0,
    ) -> AclAction:
        """First-match evaluation on a concrete packet (testing oracle)."""
        for line in self.lines:
            if line.matches_concrete(src_ip, dst_ip, protocol, src_port, dst_port, icmp_type):
                return line.action
        return self.default_action

    def __len__(self) -> int:
        return len(self.lines)
